//! Dense row-major tensors used throughout the workspace.

use crate::GemmError;

/// A dense row-major matrix.
///
/// # Example
///
/// ```
/// use usystolic_gemm::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(0, 2)] = 5.0;
/// assert_eq!(m[(0, 2)], 5.0);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, GemmError> {
        if data.len() != rows * cols {
            return Err(GemmError::ShapeMismatch {
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }
}

impl<T> Matrix<T> {
    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements (never true for a constructed
    /// matrix; kept for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major view of the underlying storage.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[must_use]
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Applies `f` to every element, producing a new matrix.
    #[must_use]
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl<T> core::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> core::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

/// An input/output feature map: `height × width × channels`, row-major with
/// channel innermost (the `I` and `O` variables of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap<T = f64> {
    height: usize,
    width: usize,
    channels: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> FeatureMap<T> {
    /// Creates a zero-filled feature map.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(height: usize, width: usize, channels: usize) -> Self {
        assert!(
            height > 0 && width > 0 && channels > 0,
            "feature map dimensions must be non-zero"
        );
        Self {
            height,
            width,
            channels,
            data: vec![T::default(); height * width * channels],
        }
    }

    /// Builds a feature map by evaluating `f(h, w, c)` everywhere.
    #[must_use]
    pub fn from_fn(
        height: usize,
        width: usize,
        channels: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut data = Vec::with_capacity(height * width * channels);
        for h in 0..height {
            for w in 0..width {
                for c in 0..channels {
                    data.push(f(h, w, c));
                }
            }
        }
        Self {
            height,
            width,
            channels,
            data,
        }
    }
}

impl<T> FeatureMap<T> {
    /// Height (`IH`/`OH`).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width (`IW`/`OW`).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Channel count (`IC`/`OC`).
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the map holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major (h, w, c) view of the storage.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable storage view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    fn offset(&self, h: usize, w: usize, c: usize) -> usize {
        debug_assert!(h < self.height && w < self.width && c < self.channels);
        (h * self.width + w) * self.channels + c
    }
}

impl<T> core::ops::Index<(usize, usize, usize)> for FeatureMap<T> {
    type Output = T;

    fn index(&self, (h, w, c): (usize, usize, usize)) -> &T {
        assert!(
            h < self.height && w < self.width && c < self.channels,
            "index ({h},{w},{c}) out of {}x{}x{}",
            self.height,
            self.width,
            self.channels
        );
        &self.data[self.offset(h, w, c)]
    }
}

impl<T> core::ops::IndexMut<(usize, usize, usize)> for FeatureMap<T> {
    fn index_mut(&mut self, (h, w, c): (usize, usize, usize)) -> &mut T {
        assert!(
            h < self.height && w < self.width && c < self.channels,
            "index ({h},{w},{c}) out of {}x{}x{}",
            self.height,
            self.width,
            self.channels
        );
        let o = self.offset(h, w, c);
        &mut self.data[o]
    }
}

/// A set of convolution weights: `out-channels × height × width ×
/// in-channels` (the `W` variable of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightSet<T = f64> {
    out_channels: usize,
    height: usize,
    width: usize,
    in_channels: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> WeightSet<T> {
    /// Creates a zero-filled weight set.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(out_channels: usize, height: usize, width: usize, in_channels: usize) -> Self {
        assert!(
            out_channels > 0 && height > 0 && width > 0 && in_channels > 0,
            "weight dimensions must be non-zero"
        );
        Self {
            out_channels,
            height,
            width,
            in_channels,
            data: vec![T::default(); out_channels * height * width * in_channels],
        }
    }

    /// Builds a weight set by evaluating `f(oc, wh, ww, ic)` everywhere.
    #[must_use]
    pub fn from_fn(
        out_channels: usize,
        height: usize,
        width: usize,
        in_channels: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Self {
        let mut data = Vec::with_capacity(out_channels * height * width * in_channels);
        for oc in 0..out_channels {
            for wh in 0..height {
                for ww in 0..width {
                    for ic in 0..in_channels {
                        data.push(f(oc, wh, ww, ic));
                    }
                }
            }
        }
        Self {
            out_channels,
            height,
            width,
            in_channels,
            data,
        }
    }
}

impl<T> WeightSet<T> {
    /// Output channel count (`OC`).
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel height (`WH`).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Kernel width (`WW`).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Input channel count (`IC`).
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the set holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major (oc, wh, ww, ic) storage view.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable storage view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    fn offset(&self, oc: usize, wh: usize, ww: usize, ic: usize) -> usize {
        ((oc * self.height + wh) * self.width + ww) * self.in_channels + ic
    }
}

impl<T> core::ops::Index<(usize, usize, usize, usize)> for WeightSet<T> {
    type Output = T;

    fn index(&self, (oc, wh, ww, ic): (usize, usize, usize, usize)) -> &T {
        assert!(
            oc < self.out_channels && wh < self.height && ww < self.width && ic < self.in_channels,
            "weight index out of range"
        );
        &self.data[self.offset(oc, wh, ww, ic)]
    }
}

impl<T> core::ops::IndexMut<(usize, usize, usize, usize)> for WeightSet<T> {
    fn index_mut(&mut self, (oc, wh, ww, ic): (usize, usize, usize, usize)) -> &mut T {
        assert!(
            oc < self.out_channels && wh < self.height && ww < self.width && ic < self.in_channels,
            "weight index out of range"
        );
        let o = self.offset(oc, wh, ww, ic);
        &mut self.data[o]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_index_roundtrip() {
        let mut m = Matrix::<i64>::zeros(3, 4);
        m[(2, 3)] = 7;
        m[(0, 0)] = -1;
        assert_eq!(m[(2, 3)], 7);
        assert_eq!(m[(0, 0)], -1);
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
    }

    #[test]
    fn matrix_from_vec_checks_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn matrix_from_fn_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as i64);
        assert_eq!(m.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(m.row(1), &[10, 11, 12]);
    }

    #[test]
    fn matrix_map_converts_type() {
        let m = Matrix::from_fn(2, 2, |r, c| (r + c) as i64);
        let f = m.map(|&v| v as f64 * 0.5);
        assert_eq!(f[(1, 1)], 1.0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn matrix_index_out_of_range_panics() {
        let m = Matrix::<f64>::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn feature_map_channel_innermost() {
        let fm = FeatureMap::from_fn(2, 2, 3, |h, w, c| (h * 100 + w * 10 + c) as i64);
        assert_eq!(fm[(1, 0, 2)], 102);
        assert_eq!(fm.as_slice()[..3], [0, 1, 2]);
        assert_eq!(fm.len(), 12);
    }

    #[test]
    fn weight_set_layout() {
        let ws = WeightSet::from_fn(2, 3, 3, 4, |oc, wh, ww, ic| {
            (oc * 1000 + wh * 100 + ww * 10 + ic) as i64
        });
        assert_eq!(ws[(1, 2, 0, 3)], 1203);
        assert_eq!(ws.len(), 2 * 3 * 3 * 4);
        assert_eq!(ws.out_channels(), 2);
        assert_eq!(ws.in_channels(), 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = FeatureMap::<f64>::zeros(0, 1, 1);
    }

    #[test]
    fn mutable_slices_write_through() {
        let mut m = Matrix::<i64>::zeros(2, 2);
        m.as_mut_slice()[3] = 9;
        assert_eq!(m[(1, 1)], 9);
        let mut fm = FeatureMap::<i64>::zeros(1, 1, 2);
        fm.as_mut_slice()[1] = 5;
        assert_eq!(fm[(0, 0, 1)], 5);
        let mut ws = WeightSet::<i64>::zeros(1, 1, 1, 2);
        ws.as_mut_slice()[0] = 4;
        assert_eq!(ws[(0, 0, 0, 0)], 4);
    }
}
