//! The GEMM parameterisation of Table II.
//!
//! One parameter block covers both matrix convolution and matrix
//! multiplication (Table II of the paper, parameter values after the ARM
//! SCALE-Sim convention \[55\]). A matrix multiplication `(M × K) · (K × N)`
//! is expressed as a 1×1 convolution: `IH = M`, `IW = 1`, `IC = K`,
//! `WH = WW = 1`, `S = 1`, `OC = N`.

use crate::GemmError;

/// Whether a GEMM is a matrix convolution or a matrix multiplication
/// (the *type* axis of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmKind {
    /// Matrix convolution (`Conv` layers).
    Convolution,
    /// Matrix multiplication (`FC` layers and friends).
    MatrixMultiply,
}

impl core::fmt::Display for GemmKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            GemmKind::Convolution => "conv",
            GemmKind::MatrixMultiply => "matmul",
        })
    }
}

/// A complete GEMM configuration: the nine parameters of Table II plus the
/// operation kind.
///
/// # Example
///
/// ```
/// use usystolic_gemm::GemmConfig;
///
/// // AlexNet Conv1: 227×227×3 input, 11×11 kernels, stride 4, 96 filters.
/// let conv1 = GemmConfig::conv(227, 227, 3, 11, 11, 4, 96).unwrap();
/// assert_eq!(conv1.output_height(), 55);
/// assert_eq!(conv1.macs(), 55 * 55 * 96 * 11 * 11 * 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmConfig {
    kind: GemmKind,
    ih: usize,
    iw: usize,
    ic: usize,
    wh: usize,
    ww: usize,
    stride: usize,
    oc: usize,
}

impl GemmConfig {
    /// Creates a matrix-convolution configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::InvalidConfig`] if any dimension is zero, or if
    /// the kernel does not fit in the input.
    pub fn conv(
        ih: usize,
        iw: usize,
        ic: usize,
        wh: usize,
        ww: usize,
        stride: usize,
        oc: usize,
    ) -> Result<Self, GemmError> {
        let cfg = Self {
            kind: GemmKind::Convolution,
            ih,
            iw,
            ic,
            wh,
            ww,
            stride,
            oc,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Creates a matrix-multiplication configuration for
    /// `(m × k) · (k × n)`, following the Table-II mapping
    /// (`IH = m, IW = 1, IC = k, WH = WW = S = 1, OC = n`).
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::InvalidConfig`] if any dimension is zero.
    pub fn matmul(m: usize, k: usize, n: usize) -> Result<Self, GemmError> {
        let cfg = Self {
            kind: GemmKind::MatrixMultiply,
            ih: m,
            iw: 1,
            ic: k,
            wh: 1,
            ww: 1,
            stride: 1,
            oc: n,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), GemmError> {
        if self.ih == 0
            || self.iw == 0
            || self.ic == 0
            || self.wh == 0
            || self.ww == 0
            || self.stride == 0
            || self.oc == 0
        {
            return Err(GemmError::InvalidConfig(
                "all parameters must be non-zero".into(),
            ));
        }
        if self.wh > self.ih || self.ww > self.iw {
            return Err(GemmError::InvalidConfig(format!(
                "kernel {}x{} does not fit input {}x{}",
                self.wh, self.ww, self.ih, self.iw
            )));
        }
        Ok(())
    }

    /// The operation kind.
    #[must_use]
    pub fn kind(&self) -> GemmKind {
        self.kind
    }

    /// Input feature map height `IH`.
    #[must_use]
    pub fn input_height(&self) -> usize {
        self.ih
    }

    /// Input feature map width `IW`.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.iw
    }

    /// Input channel count `IC`.
    #[must_use]
    pub fn input_channels(&self) -> usize {
        self.ic
    }

    /// Weight kernel height `WH`.
    #[must_use]
    pub fn weight_height(&self) -> usize {
        self.wh
    }

    /// Weight kernel width `WW`.
    #[must_use]
    pub fn weight_width(&self) -> usize {
        self.ww
    }

    /// Convolution stride `S`.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Output channel count `OC`.
    #[must_use]
    pub fn output_channels(&self) -> usize {
        self.oc
    }

    /// Output height `OH = (IH − WH) / S + 1` (Table II).
    #[must_use]
    pub fn output_height(&self) -> usize {
        (self.ih - self.wh) / self.stride + 1
    }

    /// Output width `OW = (IW − WW) / S + 1` (Table II).
    #[must_use]
    pub fn output_width(&self) -> usize {
        (self.iw - self.ww) / self.stride + 1
    }

    /// Reduction length per output element: `WH · WW · IC` — the number of
    /// systolic rows a fold occupies under weight-stationary mapping.
    #[must_use]
    pub fn reduction_len(&self) -> usize {
        self.wh * self.ww * self.ic
    }

    /// Number of output pixels per channel: `OH · OW` — the number of
    /// input column vectors streamed through the array.
    #[must_use]
    pub fn output_pixels(&self) -> usize {
        self.output_height() * self.output_width()
    }

    /// Total multiply-accumulate count of Algorithm 1.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.output_pixels() * self.oc * self.reduction_len()) as u64
    }

    /// Input feature map element count.
    #[must_use]
    pub fn input_elems(&self) -> u64 {
        (self.ih * self.iw * self.ic) as u64
    }

    /// Weight element count.
    #[must_use]
    pub fn weight_elems(&self) -> u64 {
        (self.oc * self.wh * self.ww * self.ic) as u64
    }

    /// Output feature map element count.
    #[must_use]
    pub fn output_elems(&self) -> u64 {
        (self.output_pixels() * self.oc) as u64
    }

    /// The `(rows, cols)` of the lowered matrix-multiplication view:
    /// `rows = reduction_len` (mapped to array rows under weight-stationary
    /// dataflow), `cols = OC` (mapped to array columns).
    #[must_use]
    pub fn lowered_shape(&self) -> (usize, usize) {
        (self.reduction_len(), self.oc)
    }
}

impl core::fmt::Display for GemmConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} I({}x{}x{}) W({}x{}x{}→{}) S{} O({}x{}x{})",
            self.kind,
            self.ih,
            self.iw,
            self.ic,
            self.wh,
            self.ww,
            self.ic,
            self.oc,
            self.stride,
            self.output_height(),
            self.output_width(),
            self.oc
        )
    }
}

impl usystolic_obs::ToJson for GemmKind {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::Str(self.to_string())
    }
}

impl usystolic_obs::ToJson for GemmConfig {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("kind", self.kind().to_json()),
            ("input_height", self.input_height().to_json()),
            ("input_width", self.input_width().to_json()),
            ("input_channels", self.input_channels().to_json()),
            ("weight_height", self.weight_height().to_json()),
            ("weight_width", self.weight_width().to_json()),
            ("stride", self.stride().to_json()),
            ("output_channels", self.output_channels().to_json()),
            ("output_height", self.output_height().to_json()),
            ("output_width", self.output_width().to_json()),
            ("macs", self.macs().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv1_shape() {
        let c = GemmConfig::conv(227, 227, 3, 11, 11, 4, 96).unwrap();
        assert_eq!(c.output_height(), 55);
        assert_eq!(c.output_width(), 55);
        assert_eq!(c.reduction_len(), 363);
        assert_eq!(c.macs(), 105_415_200);
    }

    #[test]
    fn matmul_follows_table_ii_mapping() {
        let m = GemmConfig::matmul(4, 9216, 4096).unwrap();
        assert_eq!(m.kind(), GemmKind::MatrixMultiply);
        assert_eq!(m.input_height(), 4);
        assert_eq!(m.input_width(), 1);
        assert_eq!(m.weight_height(), 1);
        assert_eq!(m.weight_width(), 1);
        assert_eq!(m.stride(), 1);
        assert_eq!(m.output_height(), 4);
        assert_eq!(m.output_width(), 1);
        assert_eq!(m.output_channels(), 4096);
        assert_eq!(m.macs(), 4 * 9216 * 4096);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(GemmConfig::conv(0, 4, 1, 1, 1, 1, 1).is_err());
        assert!(GemmConfig::matmul(1, 0, 1).is_err());
        assert!(GemmConfig::conv(4, 4, 1, 1, 1, 0, 1).is_err());
    }

    #[test]
    fn oversized_kernel_rejected() {
        assert!(GemmConfig::conv(3, 3, 1, 5, 5, 1, 1).is_err());
    }

    #[test]
    fn data_volumes() {
        let c = GemmConfig::conv(8, 8, 2, 3, 3, 1, 4).unwrap();
        assert_eq!(c.input_elems(), 128);
        assert_eq!(c.weight_elems(), 4 * 9 * 2);
        assert_eq!(c.output_elems(), 36 * 4);
        assert_eq!(c.lowered_shape(), (18, 4));
    }

    #[test]
    fn stride_shrinks_output() {
        let c = GemmConfig::conv(7, 7, 1, 3, 3, 2, 1).unwrap();
        assert_eq!(c.output_height(), 3);
        assert_eq!(c.output_width(), 3);
    }

    #[test]
    fn display_contains_dims() {
        let c = GemmConfig::conv(8, 8, 2, 3, 3, 1, 4).unwrap();
        let s = c.to_string();
        assert!(s.contains("conv"));
        assert!(s.contains("8x8x2"));
    }
}
