//! Error statistics for comparing computed GEMMs against a reference.
//!
//! Section V-A ranks computing schemes by "both the mean and standard
//! deviation of the error for GEMMs"; this module computes exactly those
//! statistics.

use crate::GemmError;

/// Summary statistics of the elementwise error `got − reference`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    n: usize,
    mean: f64,
    std_dev: f64,
    max_abs: f64,
    rmse: f64,
}

impl ErrorStats {
    /// Compares two equal-length slices elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::ShapeMismatch`] if lengths differ or both are
    /// empty.
    pub fn compare(reference: &[f64], got: &[f64]) -> Result<Self, GemmError> {
        if reference.len() != got.len() || reference.is_empty() {
            return Err(GemmError::ShapeMismatch {
                expected: format!("{} non-empty elements", reference.len()),
                found: format!("{}", got.len()),
            });
        }
        let n = reference.len();
        let errors: Vec<f64> = reference.iter().zip(got).map(|(&r, &g)| g - r).collect();
        let mean = errors.iter().sum::<f64>() / n as f64;
        let var = errors.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / n as f64;
        let max_abs = errors.iter().fold(0.0f64, |m, e| m.max(e.abs()));
        let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt();
        Ok(Self {
            n,
            mean,
            std_dev: var.sqrt(),
            max_abs,
            rmse,
        })
    }

    /// Number of compared elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the comparison covered zero elements (never true for a
    /// constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean signed error (bias).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the error.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Largest absolute error.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Root-mean-square error.
    #[must_use]
    pub fn rmse(&self) -> f64 {
        self.rmse
    }
}

impl core::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={:+.3e} std={:.3e} max={:.3e} rmse={:.3e}",
            self.n, self.mean, self.std_dev, self.max_abs, self.rmse
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_slices_have_zero_error() {
        let a = [1.0, -2.0, 3.5];
        let s = ErrorStats::compare(&a, &a).unwrap();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.max_abs(), 0.0);
        assert_eq!(s.rmse(), 0.0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn constant_offset_shows_as_mean() {
        let r = [0.0, 1.0, 2.0];
        let g = [0.5, 1.5, 2.5];
        let s = ErrorStats::compare(&r, &g).unwrap();
        assert!((s.mean() - 0.5).abs() < 1e-12);
        assert!(s.std_dev() < 1e-12);
        assert!((s.rmse() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symmetric_noise_shows_as_std() {
        let r = [0.0, 0.0];
        let g = [1.0, -1.0];
        let s = ErrorStats::compare(&r, &g).unwrap();
        assert!(s.mean().abs() < 1e-12);
        assert!((s.std_dev() - 1.0).abs() < 1e-12);
        assert!((s.max_abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_and_empty_rejected() {
        assert!(ErrorStats::compare(&[1.0], &[1.0, 2.0]).is_err());
        assert!(ErrorStats::compare(&[], &[]).is_err());
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = ErrorStats::compare(&[0.0], &[0.25]).unwrap();
        let text = s.to_string();
        assert!(text.contains("mean"));
        assert!(text.contains("rmse"));
    }
}
