//! Lowering matrix convolution to matrix multiplication (im2col).
//!
//! A weight-stationary systolic array consumes GEMMs in lowered form: the
//! weights become a `(WH·WW·IC) × OC` matrix held stationary in the PEs,
//! and the input becomes a `(OH·OW) × (WH·WW·IC)` matrix of unrolled
//! receptive-field columns streamed through the rows. This module performs
//! that lowering and folds the result back.

use crate::config::GemmConfig;
use crate::tensor::{FeatureMap, Matrix, WeightSet};
use crate::GemmError;

/// Lowers the input feature map into the `(OH·OW) × (WH·WW·IC)` streaming
/// matrix: row `p` holds the receptive field of output pixel `p`
/// (`p = oh·OW + ow`), unrolled in `(wh, ww, ic)` order to match
/// [`lower_weights`].
///
/// # Errors
///
/// Returns [`GemmError::ShapeMismatch`] if `input` does not match the
/// configuration.
pub fn lower_input<T: Clone + Default>(
    config: &GemmConfig,
    input: &FeatureMap<T>,
) -> Result<Matrix<T>, GemmError> {
    if (input.height(), input.width(), input.channels())
        != (
            config.input_height(),
            config.input_width(),
            config.input_channels(),
        )
    {
        return Err(GemmError::ShapeMismatch {
            expected: format!(
                "input {}x{}x{}",
                config.input_height(),
                config.input_width(),
                config.input_channels()
            ),
            found: format!("{}x{}x{}", input.height(), input.width(), input.channels()),
        });
    }
    let (ow_max, s) = (config.output_width(), config.stride());
    let k = config.reduction_len();
    let mut out = Matrix::<T>::zeros(config.output_pixels(), k);
    for oh in 0..config.output_height() {
        for ow in 0..ow_max {
            let p = oh * ow_max + ow;
            let mut col = 0;
            for wh in 0..config.weight_height() {
                for ww in 0..config.weight_width() {
                    for ic in 0..config.input_channels() {
                        out[(p, col)] = input[(wh + oh * s, ww + ow * s, ic)].clone();
                        col += 1;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Lowers the weights into the `(WH·WW·IC) × OC` stationary matrix: column
/// `oc` holds filter `oc` unrolled in `(wh, ww, ic)` order.
///
/// # Errors
///
/// Returns [`GemmError::ShapeMismatch`] if `weights` does not match the
/// configuration.
pub fn lower_weights<T: Clone + Default>(
    config: &GemmConfig,
    weights: &WeightSet<T>,
) -> Result<Matrix<T>, GemmError> {
    if (
        weights.out_channels(),
        weights.height(),
        weights.width(),
        weights.in_channels(),
    ) != (
        config.output_channels(),
        config.weight_height(),
        config.weight_width(),
        config.input_channels(),
    ) {
        return Err(GemmError::ShapeMismatch {
            expected: "weights matching config".into(),
            found: "different shape".into(),
        });
    }
    let mut out = Matrix::<T>::zeros(config.reduction_len(), config.output_channels());
    for oc in 0..config.output_channels() {
        let mut row = 0;
        for wh in 0..config.weight_height() {
            for ww in 0..config.weight_width() {
                for ic in 0..config.input_channels() {
                    out[(row, oc)] = weights[(oc, wh, ww, ic)].clone();
                    row += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Folds a lowered `(OH·OW) × OC` output matrix back into the output
/// feature map.
///
/// # Errors
///
/// Returns [`GemmError::ShapeMismatch`] if the matrix shape does not match
/// the configuration's output.
pub fn fold_output<T: Clone + Default>(
    config: &GemmConfig,
    lowered: &Matrix<T>,
) -> Result<FeatureMap<T>, GemmError> {
    if lowered.rows() != config.output_pixels() || lowered.cols() != config.output_channels() {
        return Err(GemmError::ShapeMismatch {
            expected: format!("{}x{}", config.output_pixels(), config.output_channels()),
            found: format!("{}x{}", lowered.rows(), lowered.cols()),
        });
    }
    let ow_max = config.output_width();
    let mut out = FeatureMap::<T>::zeros(
        config.output_height(),
        config.output_width(),
        config.output_channels(),
    );
    for oh in 0..config.output_height() {
        for ow in 0..ow_max {
            for oc in 0..config.output_channels() {
                out[(oh, ow, oc)] = lowered[(oh * ow_max + ow, oc)].clone();
            }
        }
    }
    Ok(out)
}

/// Plain dense matrix product `a · b` for `f64` matrices (the lowered GEMM
/// check).
///
/// # Errors
///
/// Returns [`GemmError::ShapeMismatch`] if the inner dimensions disagree.
pub fn matmul_f64(a: &Matrix<f64>, b: &Matrix<f64>) -> Result<Matrix<f64>, GemmError> {
    if a.cols() != b.rows() {
        return Err(GemmError::ShapeMismatch {
            expected: format!("inner dim {}", a.cols()),
            found: format!("{}", b.rows()),
        });
    }
    let mut out = Matrix::<f64>::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = a[(i, k)];
            for j in 0..b.cols() {
                out[(i, j)] += aik * b[(k, j)];
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::gemm_reference;

    #[test]
    fn lowered_product_equals_direct_convolution() {
        let cfg = GemmConfig::conv(5, 6, 3, 3, 2, 1, 4).unwrap();
        let input = FeatureMap::from_fn(5, 6, 3, |h, w, c| (h * 31 + w * 7 + c) as f64 * 0.1 - 2.0);
        let weights = WeightSet::from_fn(4, 3, 2, 3, |oc, wh, ww, ic| {
            ((oc * 13 + wh * 5 + ww * 3 + ic) % 7) as f64 - 3.0
        });
        let direct = gemm_reference(&cfg, &input, &weights).unwrap();

        let a = lower_input(&cfg, &input).unwrap();
        let b = lower_weights(&cfg, &weights).unwrap();
        let lowered = matmul_f64(&a, &b).unwrap();
        let folded = fold_output(&cfg, &lowered).unwrap();

        for h in 0..direct.height() {
            for w in 0..direct.width() {
                for c in 0..direct.channels() {
                    assert!(
                        (direct[(h, w, c)] - folded[(h, w, c)]).abs() < 1e-9,
                        "mismatch at ({h},{w},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn lowered_shapes() {
        let cfg = GemmConfig::conv(8, 8, 2, 3, 3, 1, 5).unwrap();
        let input = FeatureMap::<f64>::zeros(8, 8, 2);
        let weights = WeightSet::<f64>::zeros(5, 3, 3, 2);
        let a = lower_input(&cfg, &input).unwrap();
        let b = lower_weights(&cfg, &weights).unwrap();
        assert_eq!((a.rows(), a.cols()), (36, 18));
        assert_eq!((b.rows(), b.cols()), (18, 5));
    }

    #[test]
    fn matmul_case_is_trivially_lowered() {
        let cfg = GemmConfig::matmul(3, 4, 2).unwrap();
        let input = FeatureMap::from_fn(3, 1, 4, |m, _, k| (m * 4 + k) as f64);
        let a = lower_input(&cfg, &input).unwrap();
        // im2col of a 1×1 kernel is the input reinterpreted as M×K.
        assert_eq!((a.rows(), a.cols()), (3, 4));
        assert_eq!(a[(2, 3)], 11.0);
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let cfg = GemmConfig::conv(4, 4, 1, 3, 3, 1, 1).unwrap();
        assert!(lower_input(&cfg, &FeatureMap::<f64>::zeros(4, 4, 2)).is_err());
        assert!(lower_weights(&cfg, &WeightSet::<f64>::zeros(2, 3, 3, 1)).is_err());
        assert!(fold_output(&cfg, &Matrix::<f64>::zeros(3, 3)).is_err());
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(4, 2);
        assert!(matmul_f64(&a, &b).is_err());
    }
}
