//! Zero-padding helpers.
//!
//! [`GemmConfig`] follows the paper's Table II, which has no explicit
//! padding parameter — padded convolutions are expressed as enlarged
//! inputs (the convention the model zoo uses). These helpers make that
//! convention ergonomic: pad a feature map with a zero border and derive
//! the enlarged configuration in one step.

use crate::config::GemmConfig;
use crate::tensor::FeatureMap;
use crate::GemmError;

/// Surrounds a feature map with a `pad`-wide zero border on all four
/// sides (channels are untouched).
///
/// # Example
///
/// ```
/// use usystolic_gemm::pad::pad_feature_map;
/// use usystolic_gemm::FeatureMap;
///
/// let fm = FeatureMap::from_fn(2, 2, 1, |h, w, _| (h * 2 + w + 1) as f64);
/// let padded = pad_feature_map(&fm, 1);
/// assert_eq!(padded.height(), 4);
/// assert_eq!(padded[(0, 0, 0)], 0.0); // border
/// assert_eq!(padded[(1, 1, 0)], 1.0); // original (0,0)
/// ```
#[must_use]
pub fn pad_feature_map<T: Clone + Default>(fm: &FeatureMap<T>, pad: usize) -> FeatureMap<T> {
    FeatureMap::from_fn(
        fm.height() + 2 * pad,
        fm.width() + 2 * pad,
        fm.channels(),
        |h, w, c| {
            if h >= pad && h < pad + fm.height() && w >= pad && w < pad + fm.width() {
                fm[(h - pad, w - pad, c)].clone()
            } else {
                T::default()
            }
        },
    )
}

/// Builds the configuration of a padded convolution: a convolution over
/// the `pad`-enlarged input, whose output size matches the usual
/// `(IH + 2·pad − WH)/S + 1` formula.
///
/// # Errors
///
/// Returns [`GemmError::InvalidConfig`] for invalid dimensions.
///
/// # Example
///
/// ```
/// use usystolic_gemm::pad::padded_conv;
///
/// // A pad-1 3x3 "same" convolution keeps the spatial size.
/// let cfg = padded_conv(14, 14, 64, 3, 3, 1, 1, 64)?;
/// assert_eq!(cfg.output_height(), 14);
/// # Ok::<(), usystolic_gemm::GemmError>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn padded_conv(
    ih: usize,
    iw: usize,
    ic: usize,
    wh: usize,
    ww: usize,
    stride: usize,
    pad: usize,
    oc: usize,
) -> Result<GemmConfig, GemmError> {
    GemmConfig::conv(ih + 2 * pad, iw + 2 * pad, ic, wh, ww, stride, oc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::gemm_reference;
    use crate::tensor::WeightSet;

    #[test]
    fn zero_pad_preserves_interior() {
        let fm = FeatureMap::from_fn(3, 3, 2, |h, w, c| (h * 100 + w * 10 + c) as i64 + 1);
        let p = pad_feature_map(&fm, 2);
        assert_eq!(p.height(), 7);
        assert_eq!(p.width(), 7);
        assert_eq!(p.channels(), 2);
        for h in 0..3 {
            for w in 0..3 {
                for c in 0..2 {
                    assert_eq!(p[(h + 2, w + 2, c)], fm[(h, w, c)]);
                }
            }
        }
        assert_eq!(p[(0, 0, 0)], 0);
        assert_eq!(p[(6, 6, 1)], 0);
    }

    #[test]
    fn zero_pad_is_identity() {
        let fm = FeatureMap::from_fn(2, 3, 1, |h, w, _| (h + w) as f64);
        assert_eq!(pad_feature_map(&fm, 0), fm);
    }

    #[test]
    fn same_convolution_matches_manual_padding() {
        // conv over manually padded input == padded_conv config on the
        // padded tensor, with the nominal output size.
        let fm = FeatureMap::from_fn(4, 4, 1, |h, w, _| (h * 4 + w) as f64);
        let weights = WeightSet::from_fn(1, 3, 3, 1, |_, _, _, _| 1.0);
        let cfg = padded_conv(4, 4, 1, 3, 3, 1, 1, 1).expect("valid");
        let padded = pad_feature_map(&fm, 1);
        let out = gemm_reference(&cfg, &padded, &weights).expect("shapes match");
        assert_eq!(out.height(), 4);
        // Corner output sums only the 2x2 interior patch.
        assert_eq!(out[(0, 0, 0)], 0.0 + 1.0 + 4.0 + 5.0);
        // Center outputs sum full 3x3 windows.
        assert_eq!(
            out[(1, 1, 0)],
            (0..=2)
                .flat_map(|h| (0..=2).map(move |w| (h * 4 + w) as f64))
                .sum::<f64>()
        );
    }

    #[test]
    fn padded_conv_output_formula() {
        let cfg = padded_conv(13, 13, 192, 3, 3, 1, 1, 384).expect("valid");
        assert_eq!(cfg.output_height(), 13);
        let strided = padded_conv(224, 224, 3, 7, 7, 2, 3, 64).expect("valid");
        assert_eq!(strided.output_height(), 112);
    }
}
