//! The Algorithm-1 reference loop nest.
//!
//! ```text
//! for {oh, ow, oc, wh, ww, ic} in {OH, OW, OC, WH, WW, IC}:
//!     O[oh, ow, oc] += W[oc, wh, ww, ic] · I[wh + oh·S, ww + ow·S, ic]
//! ```
//!
//! Both a concrete `f64` reference and a version generic over the MAC
//! operation are provided; the latter lets a computing-scheme model (e.g.
//! a quantised HUB MAC) replace the exact multiply-accumulate while the
//! loop structure — and hence the data-reuse pattern — stays identical.

use crate::config::GemmConfig;
use crate::tensor::{FeatureMap, WeightSet};
use crate::GemmError;

fn check_shapes<T>(
    config: &GemmConfig,
    input: &FeatureMap<T>,
    weights: &WeightSet<T>,
) -> Result<(), GemmError> {
    let want_in = (
        config.input_height(),
        config.input_width(),
        config.input_channels(),
    );
    let got_in = (input.height(), input.width(), input.channels());
    if want_in != got_in {
        return Err(GemmError::ShapeMismatch {
            expected: format!("input {want_in:?}"),
            found: format!("{got_in:?}"),
        });
    }
    let want_w = (
        config.output_channels(),
        config.weight_height(),
        config.weight_width(),
        config.input_channels(),
    );
    let got_w = (
        weights.out_channels(),
        weights.height(),
        weights.width(),
        weights.in_channels(),
    );
    if want_w != got_w {
        return Err(GemmError::ShapeMismatch {
            expected: format!("weights {want_w:?}"),
            found: format!("{got_w:?}"),
        });
    }
    Ok(())
}

/// Runs Algorithm 1 exactly in `f64`, producing the output feature map.
///
/// # Errors
///
/// Returns [`GemmError::ShapeMismatch`] if the tensors do not match the
/// configuration.
///
/// # Example
///
/// ```
/// use usystolic_gemm::{gemm_reference, FeatureMap, GemmConfig, WeightSet};
///
/// let cfg = GemmConfig::conv(3, 3, 1, 2, 2, 1, 1).unwrap();
/// let input = FeatureMap::from_fn(3, 3, 1, |h, w, _| (h * 3 + w) as f64);
/// let weights = WeightSet::from_fn(1, 2, 2, 1, |_, _, _, _| 1.0);
/// let out = gemm_reference(&cfg, &input, &weights).unwrap();
/// // Top-left 2×2 window sums 0+1+3+4 = 8.
/// assert_eq!(out[(0, 0, 0)], 8.0);
/// ```
pub fn gemm_reference(
    config: &GemmConfig,
    input: &FeatureMap<f64>,
    weights: &WeightSet<f64>,
) -> Result<FeatureMap<f64>, GemmError> {
    gemm_with_mac(config, input, weights, 0.0, |acc, w, i| acc + w * i)
}

/// Runs the Algorithm-1 loop nest with a caller-supplied MAC.
///
/// `mac(acc, w, i)` must fold one weight/input pair into the running
/// accumulator; the accumulator starts at `init` for every output element.
/// Works for any element type (fixed-point integers, floats, interval
/// arithmetic, ...).
///
/// # Errors
///
/// Returns [`GemmError::ShapeMismatch`] if the tensors do not match the
/// configuration.
pub fn gemm_with_mac<T, A>(
    config: &GemmConfig,
    input: &FeatureMap<T>,
    weights: &WeightSet<T>,
    init: A,
    mut mac: impl FnMut(A, &T, &T) -> A,
) -> Result<FeatureMap<A>, GemmError>
where
    A: Clone + Default,
{
    check_shapes(config, input, weights)?;
    let (oh_max, ow_max) = (config.output_height(), config.output_width());
    let oc_max = config.output_channels();
    let s = config.stride();
    let mut out = FeatureMap::<A>::zeros(oh_max, ow_max, oc_max);
    for oh in 0..oh_max {
        for ow in 0..ow_max {
            for oc in 0..oc_max {
                let mut acc = init.clone();
                for wh in 0..config.weight_height() {
                    for ww in 0..config.weight_width() {
                        for ic in 0..config.input_channels() {
                            acc = mac(
                                acc,
                                &weights[(oc, wh, ww, ic)],
                                &input[(wh + oh * s, ww + ow * s, ic)],
                            );
                        }
                    }
                }
                out[(oh, ow, oc)] = acc;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GemmConfig;

    #[test]
    fn identity_kernel_copies_input() {
        let cfg = GemmConfig::conv(4, 4, 1, 1, 1, 1, 1).unwrap();
        let input = FeatureMap::from_fn(4, 4, 1, |h, w, _| (h * 4 + w) as f64);
        let weights = WeightSet::from_fn(1, 1, 1, 1, |_, _, _, _| 1.0);
        let out = gemm_reference(&cfg, &input, &weights).unwrap();
        for h in 0..4 {
            for w in 0..4 {
                assert_eq!(out[(h, w, 0)], input[(h, w, 0)]);
            }
        }
    }

    #[test]
    fn matmul_matches_manual_product() {
        // (2 x 3) · (3 x 2) with known values.
        let cfg = GemmConfig::matmul(2, 3, 2).unwrap();
        // Input I[m, 0, k] = A[m][k].
        let a = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let b = [[7.0, 8.0], [9.0, 10.0], [11.0, 12.0]]; // B[k][n]
        let input = FeatureMap::from_fn(2, 1, 3, |m, _, k| a[m][k]);
        let weights = WeightSet::from_fn(2, 1, 1, 3, |n, _, _, k| b[k][n]);
        let out = gemm_reference(&cfg, &input, &weights).unwrap();
        assert_eq!(out[(0, 0, 0)], 58.0);
        assert_eq!(out[(0, 0, 1)], 64.0);
        assert_eq!(out[(1, 0, 0)], 139.0);
        assert_eq!(out[(1, 0, 1)], 154.0);
    }

    #[test]
    fn strided_conv_reads_correct_windows() {
        let cfg = GemmConfig::conv(5, 5, 1, 1, 1, 2, 1).unwrap();
        let input = FeatureMap::from_fn(5, 5, 1, |h, w, _| (h * 5 + w) as f64);
        let weights = WeightSet::from_fn(1, 1, 1, 1, |_, _, _, _| 1.0);
        let out = gemm_reference(&cfg, &input, &weights).unwrap();
        assert_eq!(out.height(), 3);
        assert_eq!(out[(1, 1, 0)], input[(2, 2, 0)]);
        assert_eq!(out[(2, 2, 0)], input[(4, 4, 0)]);
    }

    #[test]
    fn multichannel_reduction_sums_channels() {
        let cfg = GemmConfig::conv(2, 2, 3, 2, 2, 1, 2).unwrap();
        let input = FeatureMap::from_fn(2, 2, 3, |_, _, _| 1.0);
        let weights = WeightSet::from_fn(2, 2, 2, 3, |oc, _, _, _| (oc + 1) as f64);
        let out = gemm_reference(&cfg, &input, &weights).unwrap();
        // Each output sums 2*2*3 = 12 terms.
        assert_eq!(out[(0, 0, 0)], 12.0);
        assert_eq!(out[(0, 0, 1)], 24.0);
    }

    #[test]
    fn generic_mac_supports_integers() {
        let cfg = GemmConfig::matmul(1, 4, 1).unwrap();
        let input = FeatureMap::from_fn(1, 1, 4, |_, _, k| (k + 1) as i64);
        let weights = WeightSet::from_fn(1, 1, 1, 4, |_, _, _, _| 2i64);
        let out = gemm_with_mac(&cfg, &input, &weights, 0i64, |acc, &w, &i| acc + w * i).unwrap();
        assert_eq!(out[(0, 0, 0)], 2 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let cfg = GemmConfig::conv(4, 4, 1, 3, 3, 1, 1).unwrap();
        let input = FeatureMap::<f64>::zeros(4, 4, 2); // wrong channels
        let weights = WeightSet::<f64>::zeros(1, 3, 3, 1);
        assert!(gemm_reference(&cfg, &input, &weights).is_err());
        let input = FeatureMap::<f64>::zeros(4, 4, 1);
        let weights = WeightSet::<f64>::zeros(2, 3, 3, 1); // wrong oc
        assert!(gemm_reference(&cfg, &input, &weights).is_err());
    }
}
