//! GEMM substrate for the uSystolic reproduction.
//!
//! The paper unifies matrix convolution and matrix multiplication under a
//! single parameterisation (Table II) executed by one loop nest
//! (Algorithm 1). This crate provides:
//!
//! * [`tensor`] — dense row-major tensors: [`tensor::Matrix`],
//!   [`tensor::FeatureMap`] (height × width × channels) and
//!   [`tensor::WeightSet`] (out-channels × height × width ×
//!   in-channels).
//! * [`config`] — [`config::GemmConfig`], the Table-II
//!   parameter block, with derived shapes, operation counts and data
//!   volumes.
//! * [`loopnest`] — the Algorithm-1 reference executor, both concrete and
//!   generic over a user-supplied multiply-accumulate so that computing
//!   schemes can be plugged in.
//! * [`im2col`] — lowering of matrix convolution to matrix multiplication,
//!   the form a weight-stationary systolic array actually consumes.
//! * [`quant`] — fixed-point quantisation: the paper's FXP-o-res and
//!   FXP-i-res comparison schemes (Section V-A).
//! * [`stats`] — error statistics (mean / standard deviation / max) of a
//!   computed GEMM against a reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod im2col;
pub mod loopnest;
pub mod pad;
pub mod quant;
pub mod stats;
pub mod tensor;

pub use config::{GemmConfig, GemmKind};
pub use loopnest::{gemm_reference, gemm_with_mac};
pub use pad::{pad_feature_map, padded_conv};
pub use quant::{FxpFormat, Quantizer};
pub use stats::ErrorStats;
pub use tensor::{FeatureMap, Matrix, WeightSet};

/// Errors produced by the GEMM substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GemmError {
    /// A dimension was zero or inconsistent.
    InvalidConfig(String),
    /// Tensor shapes do not match the configuration.
    ShapeMismatch {
        /// What was expected, human-readable.
        expected: String,
        /// What was found.
        found: String,
    },
}

impl core::fmt::Display for GemmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GemmError::InvalidConfig(msg) => write!(f, "invalid GEMM configuration: {msg}"),
            GemmError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for GemmError {}
