//! Structured diagnostics: codes, severities and the analysis report.
//!
//! Every invariant the analyzer checks has a stable `USYxxx` code so
//! scripts and CI can match on specific failures; the human-readable
//! message and fix hint may evolve freely. The code families:
//!
//! | range | family |
//! |---|---|
//! | USY00x | configuration construction (shape, bitwidth) |
//! | USY01x | early-termination legality (Section III-C) |
//! | USY02x | accumulator width / reduced-resolution accumulation (Section III-A) |
//! | USY03x | zero-SCC structural wiring (Section II-B2, Eq. 1–4) |
//! | USY04x | weight-stationary schedule and skew-FIFO legality |
//! | USY05x | memory-hierarchy feasibility (Section V-B/V-D) |
//! | USY06x | whole-network abstract interpretation (calibrated ranges, ET budget) |
//! | USY07x | serving feasibility (utilisation, deadlines, shared DRAM) |

use usystolic_obs::{JsonValue, ToJson};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A positive finding: the analyzer *proved* something a coarser
    /// check could not (e.g. overflow freedom under calibrated ranges
    /// where the worst-case rule rejects). Never rejects.
    Note,
    /// The configuration is merely suspicious; the run would complete.
    Warning,
    /// The configuration violates a paper invariant; results would be
    /// wrong or the hardware unrealisable.
    Error,
}

impl core::fmt::Display for Severity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`USY020` …).
    pub code: &'static str,
    /// Whether the finding rejects the configuration.
    pub severity: Severity,
    /// The offending input field (`acc_width`, `mul_cycles`, …).
    pub field: &'static str,
    /// What is wrong, with the concrete numbers involved.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}[{}]: {} (field: {})\n  hint: {}",
            self.severity, self.code, self.message, self.field, self.hint
        )
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("code", self.code.to_json()),
            ("severity", self.severity.to_string().to_json()),
            ("field", self.field.to_json()),
            ("message", self.message.to_json()),
            ("hint", self.hint.to_json()),
        ])
    }
}

/// The full result of one analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in check order (errors and warnings interleaved).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether no diagnostic of [`Severity::Error`] was produced.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Number of note-severity diagnostics.
    #[must_use]
    pub fn note_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Note)
            .count()
    }

    /// The codes of all findings, in order (convenient for tests).
    #[must_use]
    pub fn codes(&self) -> Vec<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Whether a specific code was reported.
    #[must_use]
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    pub(crate) fn error(
        &mut self,
        code: &'static str,
        field: &'static str,
        message: String,
        hint: String,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Error,
            field,
            message,
            hint,
        });
    }

    pub(crate) fn warning(
        &mut self,
        code: &'static str,
        field: &'static str,
        message: String,
        hint: String,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Warning,
            field,
            message,
            hint,
        });
    }

    pub(crate) fn note(
        &mut self,
        code: &'static str,
        field: &'static str,
        message: String,
        hint: String,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Note,
            field,
            message,
            hint,
        });
    }

    /// Appends every diagnostic of `other` to this report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl core::fmt::Display for Report {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} note(s)",
            self.error_count(),
            self.warning_count(),
            self.note_count()
        )
    }
}

impl ToJson for Report {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("legal", self.is_legal().to_json()),
            ("errors", self.error_count().to_json()),
            ("warnings", self.warning_count().to_json()),
            ("notes", self.note_count().to_json()),
            (
                "diagnostics",
                JsonValue::Array(self.diagnostics.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: &'static str, severity: Severity) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            field: "acc_width",
            message: "too narrow".into(),
            hint: "widen it".into(),
        }
    }

    #[test]
    fn report_counts_by_severity() {
        let r = Report {
            diagnostics: vec![
                diag("USY020", Severity::Error),
                diag("USY021", Severity::Warning),
            ],
        };
        assert!(!r.is_legal());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.codes(), vec!["USY020", "USY021"]);
        assert!(r.has("USY021"));
        assert!(!r.has("USY030"));
    }

    #[test]
    fn empty_report_is_legal() {
        let r = Report::default();
        assert!(r.is_legal());
        assert_eq!(r.to_string(), "0 error(s), 0 warning(s), 0 note(s)");
    }

    #[test]
    fn notes_never_reject_and_are_counted_separately() {
        let mut r = Report::default();
        r.note("USY060", "acc_width", "proved".into(), "enjoy".into());
        assert!(r.is_legal());
        assert_eq!(r.note_count(), 1);
        assert_eq!(r.warning_count(), 0);
        assert!(r.has("USY060"));
        assert!(r.to_json().render().contains("\"severity\":\"note\""));
        let mut other = Report::default();
        other.warning("USY021", "acc_width", "wide".into(), "shrink".into());
        r.merge(other);
        assert_eq!(r.codes(), vec!["USY060", "USY021"]);
        assert_eq!(r.warning_count(), 1);
    }

    #[test]
    fn display_formats_code_and_hint() {
        let s = diag("USY020", Severity::Error).to_string();
        assert!(s.starts_with("error[USY020]:"), "{s}");
        assert!(s.contains("hint: widen it"), "{s}");
    }

    #[test]
    fn json_roundtrips_structure() {
        let r = Report {
            diagnostics: vec![diag("USY020", Severity::Error)],
        };
        let json = r.to_json().render();
        assert!(json.contains("\"legal\":false"), "{json}");
        assert!(json.contains("\"USY020\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
    }
}
