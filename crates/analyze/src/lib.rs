//! Static invariant checker for uSystolic configurations and schedules.
//!
//! The simulator and the functional executor can only run *legal*
//! configurations — [`SystolicConfig`](usystolic_core::SystolicConfig)'s
//! constructors reject everything else with a single error. This crate
//! answers the richer question: given an arbitrary, possibly-illegal
//! proposed configuration (and optionally a workload and a memory
//! hierarchy), *which* paper invariants does it violate, and how should
//! it be fixed? All checks are closed-form over the byte-crawling
//! weight-stationary model — nothing is simulated.
//!
//! The checks and their stable diagnostic codes:
//!
//! * **construction** — non-empty array, supported bitwidth
//!   (`USY001`/`USY002`);
//! * **early termination** — rate-coded-only, `mul_cycles = 2^(n-1)`,
//!   `n ≤ N`, shifter consistency (`USY010`–`USY012`, Section III-C);
//! * **accumulator width** — the reduced-resolution accumulation rule
//!   `N + ⌈log2 depth⌉ + 2` (unary) vs `2N + ⌈log2 depth⌉ + 2` (binary)
//!   (`USY020`/`USY021`, Section III-A);
//! * **zero-SCC wiring** — rate-coded schemes must share RNGs with
//!   per-PE delay registers (`USY030`, Section II-B2/III-B);
//! * **schedule / skew FIFOs** — weight-stationary fold legality and
//!   array-edge FIFO depth (`USY040`–`USY042`);
//! * **memory feasibility** — DRAM bandwidth vs the layer's byte demand
//!   per compute cycle, SRAM capacity refetch (`USY050`–`USY052`,
//!   Section V-B/V-D);
//! * **network abstract interpretation** — calibrated value ranges
//!   propagated through a whole network prove per-layer
//!   overflow-freedom or saturation and compose early-termination error
//!   against an accuracy budget (`USY060`–`USY063`, [`interp`]);
//! * **serving feasibility** — utilisation, deadline and DRAM bounds
//!   from the closed-form batched service-time model, before any event
//!   is simulated (`USY070`–`USY073`, [`serving`]).
//!
//! # Example
//!
//! ```
//! use usystolic_analyze::{analyze, RawSpec};
//! use usystolic_core::ComputingScheme;
//!
//! // An 8-bit rate-coded array early-terminated to 256 cycles: illegal,
//! // because 2^(N-1) = 128 is the full-length run.
//! let spec = RawSpec::new(12, 14, ComputingScheme::UnaryRate, 8).with_mul_cycles(256);
//! let report = analyze(&spec, None, None);
//! assert!(!report.is_legal());
//! assert!(report.has("USY011"));
//! ```

mod checks;
mod diag;
pub mod interp;
pub mod serving;
mod spec;

pub use checks::{analyze, required_acc_width};
pub use diag::{Diagnostic, Report, Severity};
pub use interp::{
    analyze_network, derive_kernel_paths, et_window_error, window_bound, LayerVerdict,
    NetworkAnalysis,
};
pub use serving::{check_serving, ServiceEstimate, ServingSpec};
pub use spec::{RawSpec, RngWiring};
