//! The raw (unvalidated) configuration the analyzer inspects.
//!
//! [`SystolicConfig`](usystolic_core::SystolicConfig) cannot represent an
//! illegal configuration — its constructors reject one. The analyzer's
//! job is to explain *why* a proposed configuration is illegal before any
//! hardware or simulation money is spent on it, so it takes this raw
//! mirror of the config fields instead, which can hold any values.

use usystolic_core::{ComputingScheme, SystolicConfig};

/// How the per-PE rate-coded bitstream generators get their random
/// numbers (Section III-B, Fig. 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum RngWiring {
    /// One RNG shared along each row/column with per-PE delay registers
    /// (the paper's C-BSG wiring) — guarantees SCC = 0 products.
    #[default]
    SharedDelayed,
    /// An independent free-running RNG per PE — cheaper to wire but the
    /// operand streams are only *statistically* uncorrelated, so the
    /// zero-SCC condition (Eq. 1) no longer holds structurally.
    Independent,
}

impl core::fmt::Display for RngWiring {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            RngWiring::SharedDelayed => "shared-delayed",
            RngWiring::Independent => "independent",
        })
    }
}

/// An unvalidated systolic-array configuration.
///
/// Optional fields fall back to the validated defaults: no early
/// termination, the scheme's default accumulator width, shared-RNG
/// wiring and full-skew FIFOs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawSpec {
    /// Array rows `R`.
    pub rows: usize,
    /// Array columns `C`.
    pub cols: usize,
    /// Computing scheme.
    pub scheme: ComputingScheme,
    /// Data bitwidth `N`.
    pub bitwidth: u32,
    /// Requested effective bitwidth `n` (early termination), if any.
    pub effective_bitwidth: Option<u32>,
    /// Requested multiply cycle count (the paper's "Unary-32c"), if any.
    pub mul_cycles: Option<u64>,
    /// Output-register (accumulator) width override, if any.
    pub acc_width: Option<u32>,
    /// Bitstream-generator wiring of the unary schemes.
    pub wiring: RngWiring,
    /// Skew-FIFO depth override at the array edges, if any.
    pub fifo_depth: Option<usize>,
}

impl RawSpec {
    /// A raw spec with every optional knob at its default.
    #[must_use]
    pub fn new(rows: usize, cols: usize, scheme: ComputingScheme, bitwidth: u32) -> Self {
        Self {
            rows,
            cols,
            scheme,
            bitwidth,
            effective_bitwidth: None,
            mul_cycles: None,
            acc_width: None,
            wiring: RngWiring::default(),
            fifo_depth: None,
        }
    }

    /// Mirrors an already-validated configuration (useful to re-check a
    /// config against a *workload*, where shape legality is settled but
    /// accumulator depth and bandwidth are not).
    #[must_use]
    pub fn from_config(config: &SystolicConfig) -> Self {
        Self {
            rows: config.rows(),
            cols: config.cols(),
            scheme: config.scheme(),
            bitwidth: config.bitwidth(),
            effective_bitwidth: Some(config.early_termination().effective_bitwidth()),
            mul_cycles: None,
            acc_width: Some(config.acc_width()),
            wiring: RngWiring::default(),
            fifo_depth: None,
        }
    }

    /// Sets the effective bitwidth.
    #[must_use]
    pub fn with_effective_bitwidth(mut self, ebt: u32) -> Self {
        self.effective_bitwidth = Some(ebt);
        self
    }

    /// Sets the multiply cycle count.
    #[must_use]
    pub fn with_mul_cycles(mut self, cycles: u64) -> Self {
        self.mul_cycles = Some(cycles);
        self
    }

    /// Sets the accumulator width.
    #[must_use]
    pub fn with_acc_width(mut self, width: u32) -> Self {
        self.acc_width = Some(width);
        self
    }

    /// Sets the RNG wiring.
    #[must_use]
    pub fn with_wiring(mut self, wiring: RngWiring) -> Self {
        self.wiring = wiring;
        self
    }

    /// Sets the skew-FIFO depth.
    #[must_use]
    pub fn with_fifo_depth(mut self, depth: usize) -> Self {
        self.fifo_depth = Some(depth);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let s = RawSpec::new(12, 14, ComputingScheme::UnaryRate, 8)
            .with_effective_bitwidth(6)
            .with_mul_cycles(32)
            .with_acc_width(16)
            .with_wiring(RngWiring::Independent)
            .with_fifo_depth(4);
        assert_eq!(s.effective_bitwidth, Some(6));
        assert_eq!(s.mul_cycles, Some(32));
        assert_eq!(s.acc_width, Some(16));
        assert_eq!(s.wiring, RngWiring::Independent);
        assert_eq!(s.fifo_depth, Some(4));
    }

    #[test]
    fn from_config_mirrors_validated_fields() {
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(32)
            .unwrap();
        let s = RawSpec::from_config(&cfg);
        assert_eq!(s.rows, 12);
        assert_eq!(s.cols, 14);
        assert_eq!(s.effective_bitwidth, Some(6));
        assert_eq!(s.acc_width, Some(cfg.acc_width()));
    }

    #[test]
    fn wiring_displays() {
        assert_eq!(RngWiring::SharedDelayed.to_string(), "shared-delayed");
        assert_eq!(RngWiring::Independent.to_string(), "independent");
    }
}
