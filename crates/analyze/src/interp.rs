//! Whole-network abstract interpretation over calibrated value ranges.
//!
//! The per-layer checks ([`crate::checks`]) reason with *worst-case*
//! operand ranges: every input and weight at full scale. This module
//! propagates the **calibrated** level ranges of
//! [`usystolic_models::calibration`] through a [`Network`] layer by layer
//! and re-derives the accumulator question with real ranges:
//!
//! * the per-window signed count of a MAC window is *monotone* in both
//!   operand magnitudes (a larger comparator threshold can only enable
//!   more cycles), so evaluating the exact window function of the packed
//!   kernel at the range extremes yields the exact per-window maximum —
//!   not an estimate;
//! * one OREG accumulates at most `depth = min(rows, K)` windows before
//!   its M-end drain (the partial-sum cascade of Fig. 7), so the exact
//!   accumulated bound is `depth × window_bound`;
//! * comparing that bound against the register capacity `2^(w-1) - 1`
//!   yields either a **proof of overflow freedom** (`USY060`, a note —
//!   even where the worst-case rule `USY020` rejects) or a **proof of
//!   saturation** (`USY061`, an error: a data point inside the calibrated
//!   ranges realises the bound).
//!
//! Early termination composes across layers: truncating a rate-coded
//! window from `2^(N-1)` to `2^(n-1)` cycles perturbs the scaled count by
//! at most `2^(N-n+1) + 2` (the van-der-Corput discrepancy of the Sobol
//! comparator sequences is ≤ 1 per threshold count). Dividing by the
//! layer's full-precision window bound gives a per-layer relative error,
//! and the network-level bound is the first-order Lipschitz composition
//! `Π(1+ε_l) − 1`, checked against a user budget (`USY062`/`USY063`).
//!
//! Finally, [`derive_kernel_paths`] re-derives the packed-vs-serial
//! dispatch table of [`usystolic_core::kernel_paths`] from the schemes'
//! window semantics alone, so the table and the semantics cannot drift
//! apart silently.

use crate::checks::required_acc_width;
use crate::diag::Report;
use crate::spec::RawSpec;
use usystolic_core::{ComputingScheme, IfmSource, KernelPath};
use usystolic_models::calibration::{calibrate, NetworkCalibration};
use usystolic_models::zoo::Network;
use usystolic_obs::{JsonValue, ToJson};
use usystolic_unary::coding::Coding;
use usystolic_unary::packed::{self, PackedCbsg};
use usystolic_unary::rng::SobolSource;
use usystolic_unary::MAX_BITWIDTH;

/// Exact largest signed-count magnitude one MAC window can contribute to
/// the OREG, given level-magnitude bounds on the two operands.
///
/// For the sign-magnitude unary schemes this evaluates the packed
/// kernel's own window function at the extremes (`input_levels`,
/// `weight_levels`) — exact and achievable, by monotonicity of the two
/// comparator counts in their thresholds. Binary schemes contribute the
/// full product. uGEMM-H's bipolar windows add ±1 every multiply cycle,
/// so `mul_cycles` is a sound (but not achievability-proving) bound.
#[must_use]
pub fn window_bound(
    scheme: ComputingScheme,
    bitwidth: u32,
    mul_cycles: u64,
    input_levels: u64,
    weight_levels: u64,
) -> u64 {
    match scheme {
        ComputingScheme::BinaryParallel | ComputingScheme::BinarySerial => {
            input_levels * weight_levels
        }
        ComputingScheme::UGemmHybrid => mul_cycles,
        ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal => {
            // UR/UT always define a coding; the product fallback keeps
            // the bound sound if that invariant ever changes.
            let Some(coding) = scheme.coding() else {
                return input_levels * weight_levels;
            };
            let mut ifm_src = IfmSource::for_coding(coding, bitwidth);
            let seq_i = packed::sequence(&mut ifm_src, mul_cycles);
            let enabled = seq_i.iter().filter(|&&v| v < input_levels).count() as u64;
            let mut w_rng = SobolSource::dimension(0, bitwidth - 1);
            let seq_w = packed::sequence(&mut w_rng, mul_cycles);
            let cbsg = PackedCbsg::from_stream(packed::comparator_stream(&seq_w, weight_levels));
            cbsg.ones_given(enabled)
        }
    }
}

/// Sound per-window absolute error bound (in count units, post-shift) of
/// early-terminating a rate-coded window from `N` to `n` effective bits:
/// `2^(N-n+1) + 2`, zero when nothing is truncated.
#[must_use]
pub fn et_window_error(bitwidth: u32, effective_bitwidth: u32) -> u64 {
    if effective_bitwidth >= bitwidth {
        return 0;
    }
    (1u64 << (bitwidth - effective_bitwidth + 1)) + 2
}

/// Statically derives the legal kernel paths for `scheme` from its window
/// semantics, fastest first.
///
/// * **Closed form** is legal exactly when both window comparators are
///   analytic: a *temporal* enable stream (counter comparator — prefix
///   counts collapse to `min`) on constant-sign sign-magnitude operands,
///   whose weight RNG prefix count is a digit DP over the base-2 Sobol
///   sequence. No drained sequence exists at all.
/// * **Packed** is legal when every window reduces to prefix popcounts
///   over restarting comparator streams: constant increment sign with a
///   unary coding ([`ComputingScheme::sign_magnitude_operands`]), or
///   uGEMM-H — whose mixed-sign bipolar window splits into the two
///   constant-sign enable masks of its ones-/zeros-phase RNGs, each a
///   conditionally-advanced comparator like the C-BSG.
/// * The bit-serial reference machine is legal everywhere.
///
/// A tier-1 test pins this derivation against the dispatch table
/// [`usystolic_core::kernel_paths`] actually consults.
#[must_use]
pub fn derive_kernel_paths(scheme: ComputingScheme) -> Vec<KernelPath> {
    let mut paths = Vec::new();
    if scheme.sign_magnitude_operands() && scheme.coding() == Some(Coding::Temporal) {
        paths.push(KernelPath::ClosedForm);
    }
    if (scheme.sign_magnitude_operands() && scheme.coding().is_some())
        || scheme == ComputingScheme::UGemmHybrid
    {
        paths.push(KernelPath::Packed);
    }
    paths.push(KernelPath::Serial);
    paths
}

/// The abstract interpreter's verdict on one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerVerdict {
    /// Layer name.
    pub name: String,
    /// Calibrated input level-magnitude bound.
    pub input_levels: u64,
    /// Calibrated weight level-magnitude bound.
    pub weight_levels: u64,
    /// Per-fold reduction depth `min(rows, K)`.
    pub depth: usize,
    /// Exact per-window count bound at the range extremes.
    pub window_bound: u64,
    /// Accumulated OREG bound `depth × window_bound`.
    pub acc_bound: u64,
    /// OREG capacity `2^(w-1) - 1` at the spec's accumulator width.
    pub acc_capacity: u64,
    /// Width the worst-case Section III-A rule would demand.
    pub worst_case_width: u32,
    /// Relative early-termination error bound of this layer.
    pub et_rel_error: f64,
}

impl ToJson for LayerVerdict {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", self.name.as_str().to_json()),
            ("input_levels", self.input_levels.to_json()),
            ("weight_levels", self.weight_levels.to_json()),
            ("depth", self.depth.to_json()),
            ("window_bound", self.window_bound.to_json()),
            ("acc_bound", self.acc_bound.to_json()),
            ("acc_capacity", self.acc_capacity.to_json()),
            ("worst_case_width", self.worst_case_width.to_json()),
            ("et_rel_error", self.et_rel_error.to_json()),
        ])
    }
}

/// Result of interpreting a whole network against one array spec.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkAnalysis {
    /// Network-level diagnostics (`USY06x`).
    pub report: Report,
    /// Per-layer verdicts, in execution order.
    pub layers: Vec<LayerVerdict>,
    /// Composed relative ET error bound `Π(1+ε_l) − 1` across layers.
    pub composed_et_error: f64,
}

impl ToJson for NetworkAnalysis {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("report", self.report.to_json()),
            (
                "layers",
                JsonValue::Array(self.layers.iter().map(ToJson::to_json).collect()),
            ),
            ("composed_et_error", self.composed_et_error.to_json()),
        ])
    }
}

/// Resolves the spec's early-termination request to an effective
/// bitwidth, mirroring the per-layer checks (which own the error
/// reporting for inconsistent requests).
fn resolved_effective_bitwidth(spec: &RawSpec) -> u32 {
    let full = spec.bitwidth;
    if let Some(cycles) = spec.mul_cycles {
        if cycles.is_power_of_two() {
            let n = cycles.trailing_zeros() + 1;
            if n <= full {
                return n;
            }
        }
        return full;
    }
    match spec.effective_bitwidth {
        Some(n) if (1..=full).contains(&n) => n,
        _ => full,
    }
}

/// Interprets `network` abstractly under `spec`'s array configuration,
/// proving per-layer overflow freedom or saturation with calibrated
/// ranges and composing early-termination error against `acc_budget`
/// (a full-scale relative error bound, e.g. `0.05`).
///
/// The returned report contains only network-level codes (`USY060`–
/// `USY063`); combine it with the per-layer [`crate::analyze`] reports
/// for the complete picture. Specs whose construction is too broken to
/// interpret (zero rows, unsupported bitwidth, accumulator out of the
/// 2..=63 register range) come back empty — the per-layer checks have
/// already rejected them.
#[must_use]
pub fn analyze_network(
    spec: &RawSpec,
    network: &Network,
    acc_budget: Option<f64>,
) -> NetworkAnalysis {
    let mut analysis = NetworkAnalysis::default();
    if spec.rows == 0 || !(2..=MAX_BITWIDTH).contains(&spec.bitwidth) {
        return analysis;
    }
    let full = spec.bitwidth;
    let ebt = resolved_effective_bitwidth(spec);
    let full_mul = 1u64 << (full - 1);
    let mul_cycles = match spec.scheme {
        ComputingScheme::BinaryParallel => 1,
        ComputingScheme::BinarySerial => u64::from(full),
        ComputingScheme::UGemmHybrid => 1u64 << full,
        ComputingScheme::UnaryRate => 1u64 << (ebt - 1),
        ComputingScheme::UnaryTemporal => full_mul,
    };

    let cal: NetworkCalibration = calibrate(network, full);
    let mut composed = 1.0f64;
    for (i, layer) in network.layers.iter().enumerate() {
        let depth = spec.rows.min(layer.gemm.reduction_len().max(1));
        let worst = required_acc_width(spec.scheme, full, depth);
        let acc = spec.acc_width.unwrap_or(worst);
        if !(2..=63).contains(&acc) {
            return NetworkAnalysis::default();
        }
        let capacity = (1u64 << (acc - 1)) - 1;
        let (input_levels, weight_levels) = (cal.input_levels(i), cal.weight_levels(i));
        let bound = window_bound(spec.scheme, full, mul_cycles, input_levels, weight_levels);
        let acc_bound = depth as u64 * bound;

        if acc < worst && acc_bound <= capacity {
            analysis.report.note(
                "USY060",
                "acc_width",
                format!(
                    "{}/{}: accumulator width {acc} is below the worst-case requirement of \
                     {worst} bits, but calibrated ranges (|I| ≤ {input_levels}, |W| ≤ \
                     {weight_levels} levels) bound the {depth}-deep reduction at {acc_bound} ≤ \
                     capacity {capacity} — overflow-free",
                    network.name, layer.name
                ),
                "the reduced-resolution OREG can stay this narrow for this network".into(),
            );
        }
        if acc_bound > capacity && spec.scheme != ComputingScheme::UGemmHybrid {
            analysis.report.error(
                "USY061",
                "acc_width",
                format!(
                    "{}/{}: a {depth}-deep reduction of windows at the calibrated range extremes \
                     (|I| ≤ {input_levels}, |W| ≤ {weight_levels} levels) accumulates {acc_bound} \
                     > capacity {capacity} of the {acc}-bit OREG — saturation is reachable, not \
                     just possible",
                    network.name, layer.name
                ),
                format!("widen acc_width to at least {worst} or requantize the network"),
            );
        }

        let et_rel_error = if spec.scheme == ComputingScheme::UnaryRate && ebt < full {
            let full_bound = window_bound(spec.scheme, full, full_mul, input_levels, weight_levels);
            et_window_error(full, ebt) as f64 / full_bound.max(1) as f64
        } else {
            0.0
        };
        composed *= 1.0 + et_rel_error;

        analysis.layers.push(LayerVerdict {
            name: layer.name.clone(),
            input_levels,
            weight_levels,
            depth,
            window_bound: bound,
            acc_bound,
            acc_capacity: capacity,
            worst_case_width: worst,
            et_rel_error,
        });
    }
    analysis.composed_et_error = composed - 1.0;

    if let Some(budget) = acc_budget {
        let err = analysis.composed_et_error;
        if err > budget {
            analysis.report.error(
                "USY062",
                "acc_budget",
                format!(
                    "{}: composed early-termination error bound {err:.4} exceeds the accuracy \
                     budget {budget:.4} over {} layers",
                    network.name,
                    network.layers.len()
                ),
                "raise the effective bitwidth (fewer truncated cycles) or relax the budget".into(),
            );
        } else if err > budget / 2.0 {
            analysis.report.warning(
                "USY063",
                "acc_budget",
                format!(
                    "{}: composed early-termination error bound {err:.4} is within 2x of the \
                     accuracy budget {budget:.4}",
                    network.name
                ),
                "one more truncated bit would likely blow the budget; keep margin".into(),
            );
        }
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_core::kernel_paths;
    use usystolic_models::zoo::mnist_cnn4;

    fn ur_edge() -> RawSpec {
        RawSpec::new(12, 14, ComputingScheme::UnaryRate, 8)
    }

    #[test]
    fn window_bound_is_monotone_and_capped() {
        let full = 128;
        let mut prev = 0;
        for levels in [0u64, 1, 16, 64, 127] {
            let b = window_bound(ComputingScheme::UnaryRate, 8, full, levels, 127);
            assert!(b >= prev, "monotone in |I|");
            assert!(b <= levels.min(full), "bounded by min(mul, |I|)");
            prev = b;
        }
        let mut prev = 0;
        for levels in [0u64, 1, 16, 64, 127] {
            let b = window_bound(ComputingScheme::UnaryRate, 8, full, 127, levels);
            assert!(b >= prev, "monotone in |W|");
            prev = b;
        }
        // Early termination caps the window count at mul_cycles.
        assert!(window_bound(ComputingScheme::UnaryRate, 8, 8, 127, 127) <= 8);
        // Binary is the exact product; uGEMM-H is the cycle count.
        assert_eq!(
            window_bound(ComputingScheme::BinaryParallel, 8, 1, 100, 50),
            5000
        );
        assert_eq!(
            window_bound(ComputingScheme::UGemmHybrid, 8, 256, 1, 1),
            256
        );
    }

    #[test]
    fn window_bound_full_run_reaches_the_operand_min() {
        // Over the full 2^(N-1) cycles the Sobol sequence is a
        // permutation of 0..128, so a weight at the sign-magnitude
        // maximum 128 passes every enabled cycle: the bound is exactly
        // |I|. At level 127 exactly one comparator value (127) fails.
        for i in [1u64, 5, 77, 127] {
            let b = window_bound(ComputingScheme::UnaryRate, 8, 128, i, 128);
            assert_eq!(b, i, "max-magnitude weight passes every enabled cycle");
            let b127 = window_bound(ComputingScheme::UnaryRate, 8, 128, i, 127);
            assert!(b127 == i || b127 == i - 1, "|W|=127 misses at most one");
        }
    }

    #[test]
    fn derived_paths_agree_with_core_dispatch_table() {
        for scheme in ComputingScheme::ALL {
            assert_eq!(
                derive_kernel_paths(scheme),
                kernel_paths(scheme).to_vec(),
                "{scheme:?}: semantic derivation and dispatch table drifted apart"
            );
        }
    }

    #[test]
    fn calibrated_ranges_prove_overflow_freedom_where_worst_case_rejects() {
        // Worst case demands 12 bits for a 12-deep 8-bit unary reduction;
        // the first MNIST layers' calibrated ranges fit a narrower OREG.
        let need = required_acc_width(ComputingScheme::UnaryRate, 8, 12);
        let spec = ur_edge().with_acc_width(need - 2);
        let net = mnist_cnn4();
        let a = analyze_network(&spec, &net, None);
        assert!(a.report.has("USY060"), "{}", a.report);
        assert!(a.report.is_legal(), "notes must not reject: {}", a.report);
        assert_eq!(a.layers.len(), 4);
    }

    #[test]
    fn tiny_accumulator_provably_saturates() {
        let spec = ur_edge().with_acc_width(4);
        let a = analyze_network(&spec, &mnist_cnn4(), None);
        assert!(a.report.has("USY061"), "{}", a.report);
        assert!(!a.report.is_legal());
    }

    #[test]
    fn default_width_never_saturates_and_never_notes() {
        // At the worst-case default width there is nothing to prove and
        // nothing to reject, for every scheme.
        for scheme in ComputingScheme::ALL {
            let spec = RawSpec::new(12, 14, scheme, 8);
            let a = analyze_network(&spec, &mnist_cnn4(), None);
            assert!(!a.report.has("USY060"), "{scheme:?}");
            assert!(!a.report.has("USY061"), "{scheme:?}");
        }
    }

    #[test]
    fn et_error_composes_and_gates_on_budget() {
        let spec = ur_edge().with_mul_cycles(8); // n = 4: aggressive ET
        let tight = analyze_network(&spec, &mnist_cnn4(), Some(0.01));
        assert!(tight.report.has("USY062"), "{}", tight.report);
        assert!(tight.composed_et_error > 0.0);

        let full = analyze_network(&ur_edge().with_mul_cycles(128), &mnist_cnn4(), Some(0.01));
        assert!(full.report.is_legal(), "{}", full.report);
        assert_eq!(full.composed_et_error, 0.0);
    }

    #[test]
    fn near_budget_warns_without_rejecting() {
        // Find a budget sitting between err and 2*err: warn, don't error.
        let spec = ur_edge().with_mul_cycles(8);
        let err = analyze_network(&spec, &mnist_cnn4(), None).composed_et_error;
        assert!(err > 0.0);
        let a = analyze_network(&spec, &mnist_cnn4(), Some(err * 1.5));
        assert!(a.report.has("USY063"), "{}", a.report);
        assert!(a.report.is_legal(), "{}", a.report);
    }

    #[test]
    fn et_error_shrinks_with_more_effective_bits() {
        let net = mnist_cnn4();
        let coarse = analyze_network(&ur_edge().with_mul_cycles(8), &net, None);
        let fine = analyze_network(&ur_edge().with_mul_cycles(64), &net, None);
        assert!(fine.composed_et_error < coarse.composed_et_error);
    }

    #[test]
    fn broken_specs_interpret_to_nothing() {
        let a = analyze_network(
            &RawSpec::new(0, 14, ComputingScheme::UnaryRate, 8),
            &mnist_cnn4(),
            None,
        );
        assert!(a.layers.is_empty() && a.report.diagnostics.is_empty());
        let a = analyze_network(&ur_edge().with_acc_width(1), &mnist_cnn4(), Some(0.01));
        assert!(a.layers.is_empty() && a.report.diagnostics.is_empty());
    }

    #[test]
    fn verdicts_serialize_to_json() {
        let a = analyze_network(&ur_edge(), &mnist_cnn4(), None);
        let json = a.to_json().render();
        assert!(json.contains("\"window_bound\""), "{json}");
        assert!(json.contains("\"composed_et_error\""), "{json}");
    }
}
