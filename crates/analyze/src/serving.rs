//! Static serving-feasibility checks (`USY07x`).
//!
//! `serve_cli` simulates a batched, multi-instance serving system event
//! by event. Much of what the simulation reveals is already decidable
//! from the workload's closed-form service-time model before a single
//! event runs:
//!
//! * the **best achievable throughput** is `instances × max_batch /
//!   service_cycles(max_batch, instances)` — batching amortises the
//!   weight preload and the per-request cost is non-increasing in the
//!   batch size, so no schedule beats the full batch at steady state;
//! * comparing the offered arrival rate against that capacity bounds the
//!   utilisation `ρ` — at `ρ ≥ 1` the backlog provably grows without
//!   bound and the admission queue must reject (`USY070`); at `ρ ≥ 0.8`
//!   the system operates near saturation and latency explodes with
//!   queueing delay (`USY071`);
//! * the **minimum possible latency** of any request is
//!   `service_cycles(1, 1)` — a lone request on an idle system. A
//!   deadline below it is missed by *every* request (`USY072`);
//! * a workload that is DRAM-limited at the operating point gains
//!   nothing from more instances — the shared DRAM is the binding
//!   resource (`USY073`).
//!
//! The checks consume a [`ServiceEstimate`] — three numbers evaluated at
//! the operating point — rather than the serving engine's profile type
//! directly, so this crate stays independent of `usystolic_serve` (which
//! depends on this crate for the pre-flight check in `serve_cli`).
//! `WorkloadProfile::service_estimate` in `usystolic_serve` produces the
//! estimate from the real §V-H shared-DRAM model.
//!
//! All checks are conservative in the right direction: `USY070`/`USY072`
//! compare against *optimistic* bounds (ideal batching, zero queueing),
//! so an error here is a proof of infeasibility, not a heuristic.

use crate::diag::Report;

/// Utilisation above which `USY071` warns of near-saturation operation.
pub const NEAR_SATURATION: f64 = 0.8;

/// The serving-side knobs the feasibility checks need (all in cycles,
/// matching the event engine's units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingSpec {
    /// Mean cycles between open-loop arrivals (`clock / rate`).
    /// `f64::INFINITY` models a closed loop, which cannot overload.
    pub mean_interarrival_cycles: f64,
    /// Number of array instances.
    pub instances: usize,
    /// Largest batch one dispatch may carry.
    pub max_batch: usize,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Latency deadline, if any.
    pub deadline_cycles: Option<u64>,
}

/// One workload's closed-form service numbers, evaluated at the
/// operating point (`max_batch`, `instances`) of a [`ServingSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceEstimate {
    /// Workload class name (shown in diagnostics).
    pub name: String,
    /// Service cycles of a full batch with every instance contending
    /// for the shared DRAM: `service_cycles(max_batch, instances)`.
    pub batch_cycles: u64,
    /// Minimum possible latency of any request — one request, one
    /// batch, an otherwise idle system: `service_cycles(1, 1)`.
    pub single_cycles: u64,
    /// Whether the full-batch operating point is DRAM-limited.
    pub dram_limited: bool,
}

/// Checks serving feasibility of the workload summarised by `estimate`
/// under `spec`, before any event is simulated. Returns only `USY07x`
/// diagnostics.
#[must_use]
pub fn check_serving(estimate: &ServiceEstimate, spec: &ServingSpec) -> Report {
    let mut report = Report::default();
    if spec.instances == 0 || spec.max_batch == 0 {
        return report; // the engine rejects degenerate knobs itself.
    }

    // Optimistic capacity: every dispatch carries a full batch, all
    // instances busy (the steady-state shared-DRAM operating point).
    let capacity =
        spec.instances as f64 * spec.max_batch as f64 / estimate.batch_cycles.max(1) as f64;
    let offered = if spec.mean_interarrival_cycles > 0.0 {
        1.0 / spec.mean_interarrival_cycles
    } else {
        f64::INFINITY
    };
    let rho = offered / capacity;

    if rho >= 1.0 {
        report.error(
            "USY070",
            "arrival_rate",
            format!(
                "{}: offered load {offered:.6} req/cycle exceeds the best achievable throughput \
                 {capacity:.6} (utilisation {rho:.2}) — the backlog grows without bound and the \
                 {}-deep admission queue must reject",
                estimate.name, spec.queue_capacity
            ),
            "lower the arrival rate, add instances, or pick a faster scheme".into(),
        );
    } else if rho >= NEAR_SATURATION {
        report.warning(
            "USY071",
            "arrival_rate",
            format!(
                "{}: utilisation {rho:.2} is near saturation; queueing delay dominates latency \
                 from here",
                estimate.name
            ),
            "keep utilisation below 0.8 for deadline-sensitive serving".into(),
        );
    }

    if let Some(deadline) = spec.deadline_cycles {
        // The floor: one request, one batch, an otherwise idle system.
        let min_latency = estimate.single_cycles;
        if deadline < min_latency {
            report.error(
                "USY072",
                "deadline",
                format!(
                    "{}: deadline {deadline} cycles is below the minimum possible latency \
                     {min_latency} (one request on an idle instance) — every request misses",
                    estimate.name
                ),
                "raise the deadline past the single-request service time or shrink the workload"
                    .into(),
            );
        }
    }

    if estimate.dram_limited {
        report.warning(
            "USY073",
            "instances",
            format!(
                "{}: batches of {} across {} instances are DRAM-limited — the shared DRAM, not \
                 the arrays, bounds throughput, so adding instances cannot add capacity",
                estimate.name, spec.max_batch, spec.instances
            ),
            "use a lower-bandwidth (crawling unary) scheme, add SRAM, or accept the ceiling".into(),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    // Integration tests against real `WorkloadProfile`s live in
    // `usystolic_serve::workload` (which depends on this crate); these
    // exercise the decision logic over synthetic estimates.

    fn estimate() -> ServiceEstimate {
        ServiceEstimate {
            name: "conv2".into(),
            batch_cycles: 80_000,
            single_cycles: 50_000,
            dram_limited: false,
        }
    }

    fn spec(mean_interarrival_cycles: f64) -> ServingSpec {
        ServingSpec {
            mean_interarrival_cycles,
            instances: 4,
            max_batch: 8,
            queue_capacity: 16,
            deadline_cycles: None,
        }
    }

    /// Capacity of `estimate()` under `spec(_)`: 4 × 8 / 80_000.
    const CAPACITY: f64 = 32.0 / 80_000.0;

    #[test]
    fn overload_is_detected_before_any_event() {
        // Arrivals far faster than the batched capacity: provable overload.
        let r = check_serving(&estimate(), &spec(1.0));
        assert!(r.has("USY070"), "{r}");
        assert!(!r.is_legal());
    }

    #[test]
    fn light_load_passes_clean() {
        // Utilisation ~0.0125: ten batch-times between arrivals.
        let r = check_serving(&estimate(), &spec(10.0 / CAPACITY));
        assert!(r.is_legal(), "{r}");
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn near_saturation_warns_without_rejecting() {
        // Target utilisation 0.9: between the 0.8 warning and 1.0 error.
        let r = check_serving(&estimate(), &spec(1.0 / (0.9 * CAPACITY)));
        assert!(r.has("USY071"), "{r}");
        assert!(!r.has("USY070"), "{r}");
        assert!(r.is_legal());
    }

    #[test]
    fn impossible_deadline_is_an_error() {
        let e = estimate();
        let mut s = spec(1.0 / (0.1 * CAPACITY));
        s.deadline_cycles = Some(e.single_cycles - 1);
        let r = check_serving(&e, &s);
        assert!(r.has("USY072"), "{r}");
        s.deadline_cycles = Some(e.single_cycles);
        assert!(!check_serving(&e, &s).has("USY072"));
    }

    #[test]
    fn dram_bound_estimate_warns_on_instances() {
        let mut e = estimate();
        e.dram_limited = true;
        let r = check_serving(&e, &spec(10.0 / CAPACITY));
        assert!(r.has("USY073"), "{r}");
        assert!(r.is_legal());
        e.dram_limited = false;
        assert!(!check_serving(&e, &spec(10.0 / CAPACITY)).has("USY073"));
    }

    #[test]
    fn closed_loop_cannot_overload() {
        // A closed loop self-limits: infinite mean interarrival → ρ = 0.
        let r = check_serving(&estimate(), &spec(f64::INFINITY));
        assert!(r.is_legal(), "{r}");
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn degenerate_knobs_defer_to_the_engine() {
        let mut s = spec(1.0);
        s.instances = 0;
        assert!(check_serving(&estimate(), &s).diagnostics.is_empty());
    }
}
