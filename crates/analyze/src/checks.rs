//! The invariant checks.
//!
//! [`analyze`] runs every check that its inputs allow: the spec alone
//! covers construction, early termination, accumulator width and RNG
//! wiring; adding a [`GemmConfig`] enables schedule/fold checks and
//! workload-aware accumulator depth; adding a [`MemoryHierarchy`] enables
//! the bandwidth-feasibility checks. All checks are closed-form — nothing
//! is simulated.

use crate::diag::Report;
use crate::spec::{RawSpec, RngWiring};
use usystolic_core::{ComputingScheme, SystolicConfig, TileMapping};
use usystolic_gemm::GemmConfig;
use usystolic_sim::memory::MemoryHierarchy;
use usystolic_sim::runtime::ideal_cycles;
use usystolic_sim::traffic::layer_traffic;
use usystolic_unary::MAX_BITWIDTH;

/// Minimum accumulator (OREG) width for a reduction of `depth` products.
///
/// Binary schemes produce full-resolution `2N`-bit products; the HUB
/// schemes (uSystolic, uGEMM-H) keep products at the input resolution
/// `N` — the reduced-resolution accumulation of Section III-A. Summing
/// `depth` of them adds `ceil(log2(depth))` carry bits, plus one sign bit
/// and one guard bit for the sign-magnitude maximum of `2^(N-1)`
/// inclusive.
#[must_use]
pub fn required_acc_width(scheme: ComputingScheme, bitwidth: u32, depth: usize) -> u32 {
    let fold_bits = (depth.max(2) - 1).ilog2() + 1;
    match scheme {
        ComputingScheme::BinaryParallel | ComputingScheme::BinarySerial => {
            2 * bitwidth + fold_bits + 2
        }
        ComputingScheme::UGemmHybrid
        | ComputingScheme::UnaryRate
        | ComputingScheme::UnaryTemporal => bitwidth + fold_bits + 2,
    }
}

/// Runs every applicable invariant check over the inputs.
///
/// Pass `gemm` to also validate the weight-stationary schedule for a
/// specific workload, and `memory` (with `gemm`) to validate bandwidth
/// feasibility of the memory hierarchy.
#[must_use]
pub fn analyze(
    spec: &RawSpec,
    gemm: Option<&GemmConfig>,
    memory: Option<&MemoryHierarchy>,
) -> Report {
    let mut report = Report::default();
    check_construction(spec, &mut report);
    let ebt = check_early_termination(spec, &mut report);
    check_accumulator(spec, gemm, &mut report);
    check_wiring(spec, &mut report);
    check_fifo(spec, &mut report);
    if let Some(gemm) = gemm {
        check_schedule(spec, gemm, &mut report);
        if let Some(memory) = memory {
            check_bandwidth(spec, ebt, gemm, memory, &mut report);
        }
    }
    report
}

fn check_construction(spec: &RawSpec, report: &mut Report) {
    if spec.rows == 0 || spec.cols == 0 {
        report.error(
            "USY001",
            "rows",
            format!(
                "array shape {}x{} has a zero dimension",
                spec.rows, spec.cols
            ),
            "use a non-empty array, e.g. the paper's 12x14 edge or 256x256 cloud shape".into(),
        );
    }
    if !(2..=MAX_BITWIDTH).contains(&spec.bitwidth) {
        report.error(
            "USY002",
            "bitwidth",
            format!(
                "data bitwidth {} outside the supported 2..={MAX_BITWIDTH}",
                spec.bitwidth
            ),
            "the paper evaluates 4..16-bit data; pick a bitwidth in range".into(),
        );
    }
}

/// Resolves the requested early-termination policy to an effective
/// bitwidth, reporting every inconsistency on the way. Returns the
/// resolved `n` (full bitwidth when nothing was requested or the request
/// was unresolvable).
fn check_early_termination(spec: &RawSpec, report: &mut Report) -> u32 {
    let full = spec.bitwidth;
    let mut resolved = full;

    if let Some(cycles) = spec.mul_cycles {
        if cycles.is_power_of_two() {
            // mul_cycles = 2^(n-1)  =>  n = log2(cycles) + 1.
            let n = cycles.trailing_zeros() + 1;
            if n > full {
                report.error(
                    "USY011",
                    "mul_cycles",
                    format!(
                        "{cycles} multiply cycles implies effective bitwidth {n} > data bitwidth \
                         {full}"
                    ),
                    format!(
                        "rate-coded multiplication runs at most 2^(N-1) = {} cycles",
                        1u64 << (full - 1)
                    ),
                );
            } else {
                resolved = n;
            }
            if let Some(ebt) = spec.effective_bitwidth {
                if ebt != n {
                    report.error(
                        "USY012",
                        "mul_cycles",
                        format!(
                            "mul_cycles {cycles} implies effective bitwidth {n} (shift {}), but \
                             effective_bitwidth {ebt} (shift {}) was also requested",
                            full.saturating_sub(n),
                            full.saturating_sub(ebt),
                        ),
                        "the top-row shifters scale by N - n; specify only one of \
                         mul_cycles / effective_bitwidth, or make them agree"
                            .into(),
                    );
                }
            }
        } else {
            report.error(
                "USY011",
                "mul_cycles",
                format!("{cycles} multiply cycles is not a power of two"),
                "early termination stops after 2^(n-1) cycles; use 1, 2, 4, … 2^(N-1)".into(),
            );
        }
    } else if let Some(ebt) = spec.effective_bitwidth {
        if ebt == 0 || ebt > full {
            report.error(
                "USY011",
                "effective_bitwidth",
                format!("effective bitwidth {ebt} not in 1..={full}"),
                "early termination can only drop output bits, not add them".into(),
            );
        } else {
            resolved = ebt;
        }
    }

    if resolved < full && !spec.scheme.supports_early_termination() {
        let why = match spec.scheme {
            ComputingScheme::UnaryTemporal => {
                "temporal coding orders bits by significance, so truncation biases the product \
                 (Section II-B3)"
            }
            ComputingScheme::UGemmHybrid => {
                "uGEMM-H's bipolar streams have no early-termination support in the paper"
            }
            _ => "binary schemes have no unary cycle count to truncate",
        };
        report.error(
            "USY010",
            "effective_bitwidth",
            format!(
                "early termination (n = {resolved} < N = {full}) requested for {}",
                spec.scheme.label()
            ),
            format!("{why}; use the rate-coded UR scheme or drop the policy"),
        );
    }
    resolved
}

fn check_accumulator(spec: &RawSpec, gemm: Option<&GemmConfig>, report: &mut Report) {
    if spec.rows == 0 {
        return; // USY001 already reported; depth math would be meaningless.
    }
    // Per-fold reduction depth: one column of the array, capped by the
    // workload's reduction length when known.
    let depth = match gemm {
        Some(g) => spec.rows.min(g.reduction_len().max(1)),
        None => spec.rows,
    };
    let required = required_acc_width(spec.scheme, spec.bitwidth, depth);
    let acc = spec.acc_width.unwrap_or(required);
    if acc < required {
        report.error(
            "USY020",
            "acc_width",
            format!(
                "accumulator width {acc} cannot hold a {}-deep reduction of {}-bit {} products \
                 (needs {required} bits)",
                depth,
                spec.bitwidth,
                if spec.scheme.is_unary() {
                    "reduced-resolution"
                } else {
                    "full-resolution"
                },
            ),
            format!(
                "widen acc_width to at least {required}, or fold the reduction over more tiles"
            ),
        );
    }
    // Wider than even a full-resolution binary reduction would need: the
    // OREG area the paper fights to shrink is being wasted.
    let binary_need = required_acc_width(ComputingScheme::BinaryParallel, spec.bitwidth, depth);
    if acc > binary_need {
        report.warning(
            "USY021",
            "acc_width",
            format!(
                "accumulator width {acc} exceeds the full-resolution requirement of {binary_need} \
                 bits"
            ),
            format!(
                "shrink acc_width to {required} to realise the reduced-resolution OREG saving \
                 (Section III-A)"
            ),
        );
    }
}

fn check_wiring(spec: &RawSpec, report: &mut Report) {
    let rate_coded = matches!(
        spec.scheme,
        ComputingScheme::UnaryRate | ComputingScheme::UGemmHybrid
    );
    if rate_coded && spec.wiring == RngWiring::Independent {
        report.error(
            "USY030",
            "wiring",
            format!(
                "{} with independent per-PE RNGs: operand streams are not structurally \
                 SCC = 0, so AND-gate products are biased (Eq. 1)",
                spec.scheme.label()
            ),
            "share one RNG per row/column and decorrelate with per-PE delay registers \
             (the C-BSG wiring of Fig. 7)"
                .into(),
        );
    }
}

fn check_fifo(spec: &RawSpec, report: &mut Report) {
    let Some(depth) = spec.fifo_depth else {
        return;
    };
    let required = spec.rows.max(spec.cols).saturating_sub(1);
    if depth < required {
        report.error(
            "USY040",
            "fifo_depth",
            format!(
                "skew-FIFO depth {depth} cannot align a {}x{} array (needs {required})",
                spec.rows, spec.cols
            ),
            format!(
                "the weight-stationary dataflow skews row i by i cycles and drains columns \
                 across {} cycles; deepen the FIFOs to at least {required}",
                spec.cols.saturating_sub(1)
            ),
        );
    }
}

fn check_schedule(spec: &RawSpec, gemm: &GemmConfig, report: &mut Report) {
    if spec.rows == 0 || spec.cols == 0 {
        return; // USY001 already reported.
    }
    let map = TileMapping::new(gemm, spec.rows, spec.cols);
    // The ISA encodes fold indices as u32 (`LoadWeights { row_fold, col_fold }`).
    let limit = u32::MAX as usize;
    if map.row_folds() > limit || map.col_folds() > limit {
        report.error(
            "USY041",
            "gemm",
            format!(
                "fold counts {}x{} overflow the ISA's 32-bit fold indices",
                map.row_folds(),
                map.col_folds()
            ),
            "split the GEMM into smaller tiles before compiling".into(),
        );
    }
    let util = map.utilization();
    if util < 0.05 {
        report.warning(
            "USY042",
            "gemm",
            format!(
                "MAC utilisation {:.2}% on the {}x{} array (K={}, N={})",
                util * 100.0,
                spec.rows,
                spec.cols,
                map.k(),
                map.n()
            ),
            "small/skinny GEMMs waste most of the array (Section V-G); consider the edge shape"
                .into(),
        );
    }
}

/// Builds a validated config mirroring the spec, for the closed-form
/// traffic/timing models. Returns `None` when the spec is too broken to
/// validate — construction diagnostics have already been reported.
fn validated_config(spec: &RawSpec, ebt: u32) -> Option<SystolicConfig> {
    let mut cfg = SystolicConfig::new(spec.rows, spec.cols, spec.scheme, spec.bitwidth).ok()?;
    if ebt < spec.bitwidth {
        cfg = cfg.with_effective_bitwidth(ebt).ok()?;
    }
    if let Some(acc) = spec.acc_width {
        cfg = cfg.with_acc_width(acc);
    }
    Some(cfg)
}

fn check_bandwidth(
    spec: &RawSpec,
    ebt: u32,
    gemm: &GemmConfig,
    memory: &MemoryHierarchy,
    report: &mut Report,
) {
    let Some(cfg) = validated_config(spec, ebt) else {
        return;
    };
    let traffic = layer_traffic(gemm, &cfg, memory);
    let ideal = ideal_cycles(gemm, &cfg).max(1);
    let sustained = memory.dram.sustained_bytes_per_cycle();
    let needed = traffic.dram.total() as f64 / ideal as f64;

    if needed > sustained {
        let msg = format!(
            "layer needs {needed:.2} DRAM bytes/cycle but the DRAM sustains {sustained:.2} \
             ({} bytes over {ideal} compute cycles)",
            traffic.dram.total()
        );
        if memory.has_sram() {
            report.warning(
                "USY051",
                "memory",
                msg,
                "the run will be memory-bound despite the SRAM; lengthen the MAC interval \
                 (crawling) or accept the stall overhead (Section V-D)"
                    .into(),
            );
        } else {
            report.error(
                "USY050",
                "memory",
                msg,
                "SRAM-free operation is only feasible for low-bandwidth (unary, long-MAC) \
                 schemes (Section V-B); add SRAM or switch scheme"
                    .into(),
            );
        }
    }

    if let Some(sram) = memory.sram {
        let ifm_raw = gemm.input_elems() * u64::from(spec.bitwidth.div_ceil(8));
        if ifm_raw > sram.capacity_bytes {
            let map = TileMapping::new(gemm, cfg.rows(), cfg.cols());
            report.warning(
                "USY052",
                "memory",
                format!(
                    "raw IFM of {ifm_raw} bytes exceeds the {}-byte SRAM slice; it will be \
                     refetched once per column fold ({}x)",
                    sram.capacity_bytes,
                    map.col_folds()
                ),
                "shrink the layer, enlarge the SRAM, or accept the refetch traffic".into(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ur_edge() -> RawSpec {
        RawSpec::new(12, 14, ComputingScheme::UnaryRate, 8)
    }

    #[test]
    fn default_spec_is_clean() {
        let r = analyze(&ur_edge(), None, None);
        assert!(r.is_legal(), "{r}");
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn required_width_matches_core_default() {
        // The analyzer's requirement equals the width core assigns by
        // default, for every scheme and both paper shapes.
        for scheme in ComputingScheme::ALL {
            for rows in [12usize, 256] {
                let cfg = SystolicConfig::new(rows, rows, scheme, 8).unwrap();
                assert_eq!(
                    required_acc_width(scheme, 8, rows),
                    cfg.acc_width(),
                    "{scheme:?} {rows}"
                );
            }
        }
    }

    #[test]
    fn acc_width_boundary_exact_vs_one_short() {
        let need = required_acc_width(ComputingScheme::UnaryRate, 8, 12);
        let exact = analyze(&ur_edge().with_acc_width(need), None, None);
        assert!(exact.is_legal(), "{exact}");
        let short = analyze(&ur_edge().with_acc_width(need - 1), None, None);
        assert!(short.has("USY020"), "{short}");
        assert!(!short.is_legal());
    }

    #[test]
    fn workload_caps_reduction_depth() {
        // K = 4 < rows = 12: the per-fold depth is 4, so a narrower
        // accumulator becomes legal once the workload is known.
        let gemm = GemmConfig::matmul(1, 4, 14).unwrap();
        let need_k4 = required_acc_width(ComputingScheme::UnaryRate, 8, 4);
        let spec = ur_edge().with_acc_width(need_k4);
        assert!(analyze(&spec, Some(&gemm), None).is_legal());
        assert!(analyze(&spec, None, None).has("USY020"));
    }

    #[test]
    fn overprovisioned_accumulator_warns() {
        let binary_need = required_acc_width(ComputingScheme::BinaryParallel, 8, 12);
        let r = analyze(&ur_edge().with_acc_width(binary_need + 1), None, None);
        assert!(r.is_legal(), "warning must not reject: {r}");
        assert!(r.has("USY021"), "{r}");
    }

    #[test]
    fn ebt_boundary_n_equals_full_vs_above() {
        let ok = analyze(&ur_edge().with_effective_bitwidth(8), None, None);
        assert!(ok.is_legal(), "{ok}");
        let over = analyze(&ur_edge().with_effective_bitwidth(9), None, None);
        assert!(over.has("USY011"), "{over}");
    }

    #[test]
    fn mul_cycles_boundary_max_vs_double() {
        // 2^(N-1) = 128 is the full-length run; 256 implies n = 9 > 8.
        let ok = analyze(&ur_edge().with_mul_cycles(128), None, None);
        assert!(ok.is_legal(), "{ok}");
        let over = analyze(&ur_edge().with_mul_cycles(256), None, None);
        assert!(over.has("USY011"), "{over}");
    }

    #[test]
    fn non_power_of_two_cycles_rejected() {
        let r = analyze(&ur_edge().with_mul_cycles(33), None, None);
        assert!(r.has("USY011"), "{r}");
    }

    #[test]
    fn inconsistent_et_pair_rejected() {
        // 32 cycles implies n = 6; requesting n = 7 alongside mismatches
        // the shifter scale.
        let r = analyze(
            &ur_edge().with_mul_cycles(32).with_effective_bitwidth(7),
            None,
            None,
        );
        assert!(r.has("USY012"), "{r}");
        let ok = analyze(
            &ur_edge().with_mul_cycles(32).with_effective_bitwidth(6),
            None,
            None,
        );
        assert!(ok.is_legal(), "{ok}");
    }

    #[test]
    fn et_on_non_rate_schemes_rejected() {
        for scheme in [
            ComputingScheme::BinaryParallel,
            ComputingScheme::BinarySerial,
            ComputingScheme::UGemmHybrid,
            ComputingScheme::UnaryTemporal,
        ] {
            let spec = RawSpec::new(12, 14, scheme, 8).with_effective_bitwidth(6);
            let r = analyze(&spec, None, None);
            assert!(r.has("USY010"), "{scheme:?}: {r}");
        }
    }

    #[test]
    fn independent_wiring_rejected_for_rate_coded() {
        for scheme in [ComputingScheme::UnaryRate, ComputingScheme::UGemmHybrid] {
            let spec = RawSpec::new(12, 14, scheme, 8).with_wiring(RngWiring::Independent);
            let r = analyze(&spec, None, None);
            assert!(r.has("USY030"), "{scheme:?}: {r}");
        }
        // Temporal streams are deterministic; binary has no RNG at all.
        for scheme in [
            ComputingScheme::UnaryTemporal,
            ComputingScheme::BinaryParallel,
        ] {
            let spec = RawSpec::new(12, 14, scheme, 8).with_wiring(RngWiring::Independent);
            assert!(analyze(&spec, None, None).is_legal(), "{scheme:?}");
        }
    }

    #[test]
    fn shallow_fifo_rejected_exact_depth_accepted() {
        let r = analyze(&ur_edge().with_fifo_depth(12), None, None);
        assert!(r.has("USY040"), "{r}");
        let ok = analyze(&ur_edge().with_fifo_depth(13), None, None);
        assert!(ok.is_legal(), "{ok}");
    }

    #[test]
    fn empty_array_and_bad_bitwidth() {
        let r = analyze(
            &RawSpec::new(0, 14, ComputingScheme::UnaryRate, 8),
            None,
            None,
        );
        assert!(r.has("USY001"), "{r}");
        let r = analyze(
            &RawSpec::new(12, 14, ComputingScheme::UnaryRate, 1),
            None,
            None,
        );
        assert!(r.has("USY002"), "{r}");
        let r = analyze(
            &RawSpec::new(12, 14, ComputingScheme::UnaryRate, MAX_BITWIDTH + 1),
            None,
            None,
        );
        assert!(r.has("USY002"), "{r}");
    }

    #[test]
    fn binary_without_sram_is_bandwidth_infeasible() {
        // The paper's motivating case: binary parallel cannot drop the
        // SRAM on a memory-hungry AlexNet-class layer.
        let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 256).unwrap();
        let spec = RawSpec::new(12, 14, ComputingScheme::BinaryParallel, 8);
        let r = analyze(&spec, Some(&gemm), Some(&MemoryHierarchy::no_sram()));
        assert!(r.has("USY050"), "{r}");
        assert!(!r.is_legal());
    }

    #[test]
    fn crawling_unary_without_sram_is_feasible() {
        let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 256).unwrap();
        let spec = RawSpec::new(12, 14, ComputingScheme::UnaryRate, 8).with_mul_cycles(128);
        let r = analyze(&spec, Some(&gemm), Some(&MemoryHierarchy::no_sram()));
        assert!(r.is_legal(), "{r}");
    }

    #[test]
    fn low_utilization_warns() {
        let gemm = GemmConfig::matmul(1, 4, 4).unwrap();
        let spec = RawSpec::new(256, 256, ComputingScheme::BinaryParallel, 8);
        let r = analyze(&spec, Some(&gemm), None);
        assert!(r.has("USY042"), "{r}");
        assert!(r.is_legal(), "utilisation is a warning: {r}");
    }
}
