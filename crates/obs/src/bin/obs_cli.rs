//! `obs_cli` — telemetry-snapshot tooling, starting with `diff`: the
//! repo's automated perf gate.
//!
//! ```sh
//! # Compare two bench/metrics snapshots; exit 1 on regression.
//! obs_cli diff BENCH_kernel.json fresh_kernel.json --threshold 20
//!
//! # Only the kernel-throughput ratio gates the build; everything else
//! # (raw wall times shift with machine load) is informational.
//! obs_cli diff BENCH_kernel.json fresh_kernel.json \
//!     --threshold 20 --gate speedup
//!
//! # Machine-readable report.
//! obs_cli diff old.json new.json --json
//! ```
//!
//! Any JSON object tree works: `BENCH_*.json` artifacts, `--metrics`
//! registry snapshots, or `--json` CLI reports. Keys are flattened to
//! dotted paths, classified by direction heuristics (`speedup` up is
//! good, `_us`/`stall_cycles` up is bad), and changes beyond the
//! threshold in the bad direction fail the run.
//!
//! Exit codes: 0 no regression, 1 regression detected, 2 usage or I/O
//! error.

use usystolic_obs::diff::{diff_snapshots, DiffOptions, Direction};
use usystolic_obs::{JsonValue, ToJson};

fn usage() -> ! {
    eprintln!(
        "usage: obs_cli diff OLD.json NEW.json [--threshold PCT] [--gate SUBSTR]... [--json]

Flattens both snapshots to dotted numeric keys, classifies each key as
higher-is-better (speedup, throughput, efficiency, ...) or
lower-is-better (_us, latency, stall, dropped, ...), and exits 1 when a
gated key moves beyond the threshold (default 20%) in the bad direction.
--gate restricts gating to keys containing SUBSTR (repeatable); ungated
keys are still reported."
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("obs_cli: error: {message}");
    std::process::exit(2);
}

fn load(path: &str) -> JsonValue {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    JsonValue::parse(&text).unwrap_or_else(|e| fail(format!("{path}: invalid JSON: {e:?}")))
}

fn direction_glyph(d: Direction) -> &'static str {
    match d {
        Direction::HigherIsBetter => "↑good",
        Direction::LowerIsBetter => "↓good",
        Direction::Unknown => "  -  ",
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage();
    };
    if cmd != "diff" {
        fail(format!("unknown command '{cmd}' (expected 'diff')"));
    }

    let mut paths: Vec<&str> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut json_out = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--threshold needs a value"));
                opts.threshold_pct = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--threshold {v}: not a number")));
                if opts.threshold_pct.is_nan() || opts.threshold_pct < 0.0 {
                    fail("--threshold must be non-negative");
                }
            }
            "--gate" => {
                let v = it.next().unwrap_or_else(|| fail("--gate needs a value"));
                opts.gates.push(v.clone());
            }
            "--json" => json_out = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => fail(format!("unknown flag '{other}'")),
            other => paths.push(other),
        }
    }
    if paths.len() != 2 {
        usage();
    }

    let old = load(paths[0]);
    let new = load(paths[1]);
    let report = diff_snapshots(&old, &new, &opts);

    if json_out {
        println!("{}", report.to_json().render());
    } else {
        println!(
            "obs_cli diff: {} vs {} (threshold {}%{})",
            paths[0],
            paths[1],
            opts.threshold_pct,
            if opts.gates.is_empty() {
                String::new()
            } else {
                format!(", gates: {}", opts.gates.join(","))
            }
        );
        println!(
            "{:<44} {:>14} {:>14} {:>9}  {:>6} verdict",
            "key", "old", "new", "pct", "dir"
        );
        for row in &report.rows {
            let pct = row
                .pct
                .map_or_else(|| "n/a".to_owned(), |p| format!("{p:+.1}%"));
            let verdict = if row.regression { "REGRESSION" } else { "ok" };
            println!(
                "{:<44} {:>14} {:>14} {:>9}  {:>6} {}",
                row.key,
                format!("{}", row.old),
                format!("{}", row.new),
                pct,
                direction_glyph(row.direction),
                verdict
            );
        }
        for key in &report.only_old {
            println!("{key:<44} (only in old snapshot)");
        }
        for key in &report.only_new {
            println!("{key:<44} (only in new snapshot)");
        }
        println!(
            "compared {} keys, {} regression(s)",
            report.rows.len(),
            report.regressions()
        );
    }

    if report.has_regressions() {
        std::process::exit(1);
    }
}
