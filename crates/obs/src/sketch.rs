//! A deterministic, mergeable streaming-quantile sketch (merging
//! t-digest with a fixed compression factor).
//!
//! The serve engine needs p50/p95/p99 of the request-latency
//! distribution without storing every sample, and sweep fan-outs need to
//! *merge* per-chunk digests into one. This implementation follows the
//! merging t-digest of Dunning & Ertl with the `k1` (arcsine) scale
//! function and makes two deliberate restrictions so results are
//! bit-reproducible:
//!
//! * **no randomness** — ties are broken by insertion order via a stable
//!   sort, never by coin flip;
//! * **no wall clock** — compression triggers purely on buffer size.
//!
//! The digest is therefore a pure function of the observation sequence,
//! and a merge is a pure function of the two digests in argument order.
//! Call sites that fold worker results merge in a fixed chunk order, so
//! worker count never changes the result (pinned by the
//! `labeled_metrics_deterministic_across_worker_counts` integration
//! test).
//!
//! ## Error bound
//!
//! With the default compression `δ = 128`, the `k1` scale function bounds
//! every centroid's weight by `4·n·q(1−q)/δ`, which caps the *rank* error
//! of an interpolated quantile at about `2·q(1−q)/δ` of the sample count:
//! ≲ 0.4 % of `n` at the median and tighter toward the tails (p95/p99).
//! The `docs/observability.md` catalog and the
//! `sketch_agrees_with_exact_histogram_on_serve_latency` test both work
//! to a conservative ±1 % rank band.

use crate::json::{JsonValue, ToJson};

/// Default compression factor: ~2× the centroid budget, ≲0.4 % mid-range
/// rank error.
pub const DEFAULT_COMPRESSION: f64 = 128.0;

/// Buffered observations per compression pass, as a multiple of the
/// compression factor.
const BUFFER_FACTOR: f64 = 4.0;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// A mergeable t-digest quantile sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    compression: f64,
    centroids: Vec<Centroid>,
    buffer: Vec<f64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_COMPRESSION)
    }
}

impl QuantileSketch {
    /// Creates a sketch with the given compression factor (clamped to at
    /// least 16; larger is more accurate and more memory).
    #[must_use]
    pub fn new(compression: f64) -> Self {
        let compression = if compression.is_finite() && compression > 16.0 {
            compression
        } else {
            16.0
        };
        Self {
            compression,
            centroids: Vec::new(),
            buffer: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Non-finite samples are ignored.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buffer.push(v);
        if self.buffer.len() >= (BUFFER_FACTOR * self.compression) as usize {
            self.compress();
        }
    }

    /// Folds another sketch into this one. The result keeps `self`'s
    /// compression factor and is a deterministic function of the two
    /// digests in this argument order.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.centroids.extend(other.centroids.iter().copied());
        self.buffer.extend(other.buffer.iter().copied());
        self.compress();
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The configured compression factor.
    #[must_use]
    pub fn compression(&self) -> f64 {
        self.compression
    }

    /// Number of centroids currently held (after an internal flush the
    /// bound is ~`2 × compression`).
    #[must_use]
    pub fn centroid_count(&self) -> usize {
        self.centroids.len() + self.buffer.len()
    }

    /// Estimates the quantile `q ∈ [0, 1]`, or `None` when empty.
    /// `q ≤ 0` returns the minimum, `q ≥ 1` the maximum.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        // Work on the merged view of flushed centroids + pending buffer
        // singletons so `&self` access never mutates state.
        let mut view: Vec<Centroid> = self.centroids.clone();
        view.extend(self.buffer.iter().map(|&v| Centroid {
            mean: v,
            weight: 1.0,
        }));
        view.sort_by(|a, b| a.mean.total_cmp(&b.mean));

        let total = self.count as f64;
        let target = q * total;
        // Each centroid's mass is centred at (cumulative + weight/2);
        // interpolate linearly between adjacent centres and clamp to the
        // exact observed extremes.
        let mut cum = 0.0;
        let mut prev_centre = 0.0;
        let mut prev_mean = self.min;
        for c in &view {
            let centre = cum + c.weight / 2.0;
            if target <= centre {
                if centre <= prev_centre {
                    return Some(c.mean.clamp(self.min, self.max));
                }
                let t = (target - prev_centre) / (centre - prev_centre);
                let v = prev_mean + t * (c.mean - prev_mean);
                return Some(v.clamp(self.min, self.max));
            }
            cum += c.weight;
            prev_centre = centre;
            prev_mean = c.mean;
        }
        Some(self.max)
    }

    /// Estimates the percentile `p ∈ [0, 100]` (mirrors
    /// `LatencySummary`'s convention), or `None` when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        self.quantile(p / 100.0)
    }

    /// The `k1` scale function: maps `q ∈ [0,1]` to `k ∈ [0, δ]` with
    /// fine resolution at both tails.
    fn k_scale(&self, q: f64) -> f64 {
        let clamped = q.clamp(0.0, 1.0);
        self.compression * ((2.0 * clamped - 1.0).asin() / std::f64::consts::PI + 0.5)
    }

    fn k_inverse(&self, k: f64) -> f64 {
        let x = (k / self.compression - 0.5) * std::f64::consts::PI;
        (x.sin() + 1.0) / 2.0
    }

    /// Flushes the buffer into the centroid list with one merge pass.
    fn compress(&mut self) {
        if self.buffer.is_empty() && self.centroids.len() <= (2.0 * self.compression) as usize {
            return;
        }
        let mut incoming: Vec<Centroid> = std::mem::take(&mut self.centroids);
        incoming.extend(self.buffer.drain(..).map(|v| Centroid {
            mean: v,
            weight: 1.0,
        }));
        incoming.sort_by(|a, b| a.mean.total_cmp(&b.mean));
        if incoming.is_empty() {
            return;
        }

        let total: f64 = incoming.iter().map(|c| c.weight).sum();
        let mut out: Vec<Centroid> = Vec::with_capacity((2.0 * self.compression) as usize);
        let mut acc = incoming[0];
        let mut q_left = 0.0;
        let mut q_limit = self.k_inverse(self.k_scale(0.0) + 1.0);
        for c in incoming.iter().skip(1) {
            let q_right = q_left + (acc.weight + c.weight) / total;
            if q_right <= q_limit {
                // Weighted mean keeps the centroid's centre exact.
                let w = acc.weight + c.weight;
                acc.mean = (acc.mean * acc.weight + c.mean * c.weight) / w;
                acc.weight = w;
            } else {
                q_left += acc.weight / total;
                q_limit = self.k_inverse(self.k_scale(q_left) + 1.0);
                out.push(acc);
                acc = *c;
            }
        }
        out.push(acc);
        self.centroids = out;
    }
}

impl ToJson for QuantileSketch {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            ("min", self.min().to_json()),
            ("max", self.max().to_json()),
            ("compression", self.compression.to_json()),
            ("p50", self.quantile(0.50).to_json()),
            ("p95", self.quantile(0.95).to_json()),
            ("p99", self.quantile(0.99).to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank percentile (the `crates/serve` histogram
    /// convention): rank = ceil(p/100 · n), 1-based.
    fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
        assert!(!sorted.is_empty());
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    /// Deterministic sample stream (SplitMix64-style, fixed seed).
    fn samples(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                // Skewed, latency-like distribution: mostly small with a
                // long tail.
                let u = (z >> 11) as f64 / (1u64 << 53) as f64;
                1.0 + 5000.0 * u * u * u * u
            })
            .collect()
    }

    fn rank_of(sorted: &[f64], v: f64) -> f64 {
        let below = sorted.iter().filter(|&&x| x <= v).count();
        below as f64 / sorted.len() as f64
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut s = QuantileSketch::default();
        s.observe(42.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(42.0));
        }
    }

    #[test]
    fn quantiles_within_one_percent_rank_error() {
        let mut data = samples(20_000, 7);
        let mut s = QuantileSketch::default();
        for &v in &data {
            s.observe(v);
        }
        data.sort_by(f64::total_cmp);
        for p in [10.0, 50.0, 90.0, 95.0, 99.0] {
            let est = s.percentile(p).unwrap();
            let r = rank_of(&data, est);
            assert!(
                (r - p / 100.0).abs() <= 0.01,
                "p{p}: estimated {est} sits at rank {r}"
            );
        }
    }

    #[test]
    fn nearest_rank_agreement_on_small_exact_band() {
        let mut data = samples(5000, 3);
        let mut s = QuantileSketch::default();
        for &v in &data {
            s.observe(v);
        }
        data.sort_by(f64::total_cmp);
        for p in [50.0, 95.0, 99.0] {
            let est = s.percentile(p).unwrap();
            let lo = exact_percentile(&data, (p - 1.0).max(0.0));
            let hi = exact_percentile(&data, (p + 1.0).min(100.0));
            assert!(
                est >= lo && est <= hi,
                "p{p}: {est} outside nearest-rank band [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn merge_equals_sequential_observation() {
        let data = samples(8192, 11);
        let mut whole = QuantileSketch::default();
        for &v in &data {
            whole.observe(v);
        }
        // Merge per-chunk digests in fixed chunk order.
        let mut merged = QuantileSketch::default();
        for chunk in data.chunks(1000) {
            let mut part = QuantileSketch::default();
            for &v in chunk {
                part.observe(v);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        for p in [50.0, 95.0, 99.0] {
            let est = merged.percentile(p).unwrap();
            let r = rank_of(&sorted, est);
            assert!(
                (r - p / 100.0).abs() <= 0.01,
                "merged p{p}: {est} at rank {r}"
            );
        }
    }

    #[test]
    fn identical_streams_give_bit_identical_digests() {
        let data = samples(4096, 5);
        let build = || {
            let mut s = QuantileSketch::default();
            for &v in &data {
                s.observe(v);
            }
            s
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn centroid_budget_is_bounded() {
        let mut s = QuantileSketch::default();
        for &v in &samples(100_000, 1) {
            s.observe(v);
        }
        assert!(
            s.centroid_count() <= (6.0 * s.compression()) as usize,
            "centroids {} exceed budget",
            s.centroid_count()
        );
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut s = QuantileSketch::default();
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        s.observe(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), Some(1.0));
    }

    #[test]
    fn json_shape_has_percentiles() {
        let mut s = QuantileSketch::default();
        for v in 1..=100 {
            s.observe(f64::from(v));
        }
        let j = s.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(100));
        assert!(j.get("p50").unwrap().as_f64().unwrap() > 0.0);
        assert!(j.get("p99").unwrap().as_f64().unwrap() >= j.get("p50").unwrap().as_f64().unwrap());
    }
}
