//! Dimensional metric keys: a metric is identified by `(name, sorted
//! label set)` so one logical signal — `serve.rejected`, say — can be
//! broken down per shard, priority class, or computing scheme without
//! exploding into ad-hoc name suffixes.
//!
//! Labels are carried as borrowed `&[(&str, &str)]` slices right up to
//! the point a session is known to be installed, so a disabled
//! instrumentation site stays allocation-free (pinned by the
//! `noop_overhead` test). The [`labels!`] macro builds such a slice in
//! place:
//!
//! ```
//! use usystolic_obs::labels;
//!
//! let l = labels!("class" => "alexnet", "priority" => "high");
//! assert_eq!(l.len(), 2);
//! ```
//!
//! Inside the registry the pairs become an owned [`LabelSet`], sorted by
//! key (`BTreeMap`-style) so that rendering, JSON snapshots and
//! Prometheus exposition are deterministic regardless of the order the
//! call site listed the labels in.

use crate::json::{JsonValue, ToJson};

/// Builds a `&[(&str, &str)]` label slice in place, without allocating.
///
/// ```
/// use usystolic_obs::labels;
/// let empty = labels!();
/// assert!(empty.is_empty());
/// let one = labels!("scheme" => "UR");
/// assert_eq!(one, &[("scheme", "UR")]);
/// ```
#[macro_export]
macro_rules! labels {
    () => {
        &[] as &[(&str, &str)]
    };
    ($($k:expr => $v:expr),+ $(,)?) => {
        &[$(($k, $v)),+] as &[(&str, &str)]
    };
}

/// An owned, key-sorted set of `key=value` labels.
///
/// Keys are unique; when the input slice repeats a key the last value
/// wins (matching `BTreeMap::insert` semantics).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelSet {
    pairs: Vec<(String, String)>,
}

impl LabelSet {
    /// The empty label set (the key of every unlabeled metric).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a set from borrowed pairs, sorting by key and keeping the
    /// last value for duplicate keys.
    #[must_use]
    pub fn from_pairs(pairs: &[(&str, &str)]) -> Self {
        let mut owned: Vec<(String, String)> = pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        owned.sort_by(|a, b| a.0.cmp(&b.0));
        owned.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                // `dedup_by` keeps the *first* of a run; we want the last
                // occurrence, so copy it forward before dropping.
                earlier.1 = std::mem::take(&mut later.1);
                true
            } else {
                false
            }
        });
        Self { pairs: owned }
    }

    /// True when no labels are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Looks up a label value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.pairs[i].1.as_str())
    }

    /// Renders the `{k="v",...}` suffix, or the empty string when there
    /// are no labels. Values are escaped Prometheus-style (`\\`, `\"`,
    /// `\n`).
    #[must_use]
    pub fn render(&self) -> String {
        if self.pairs.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_into(&mut out, v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

fn escape_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

impl ToJson for LabelSet {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.pairs
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                .collect(),
        )
    }
}

/// The full identity of a dimensional metric: name plus label set.
///
/// Ordering is by name first, then by the sorted labels, so a
/// `BTreeMap<MetricKey, _>` iterates all series of one metric
/// contiguously — exactly the grouping the Prometheus exporter needs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    name: String,
    labels: LabelSet,
}

impl MetricKey {
    /// Builds a key from a name and borrowed label pairs.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        Self {
            name: name.to_owned(),
            labels: LabelSet::from_pairs(labels),
        }
    }

    /// An unlabeled key.
    #[must_use]
    pub fn plain(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            labels: LabelSet::empty(),
        }
    }

    /// The metric name without labels.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The label set.
    #[must_use]
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// The canonical string form: `name` when unlabeled, otherwise
    /// `name{k="v",...}` with keys sorted. This is the key used in JSON
    /// snapshots.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut out = self.name.clone();
        out.push_str(&self.labels.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sort_by_key_regardless_of_call_order() {
        let a = LabelSet::from_pairs(labels!("z" => "1", "a" => "2"));
        let b = LabelSet::from_pairs(labels!("a" => "2", "z" => "1"));
        assert_eq!(a, b);
        assert_eq!(a.render(), "{a=\"2\",z=\"1\"}");
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let l = LabelSet::from_pairs(labels!("k" => "old", "k" => "new"));
        assert_eq!(l.len(), 1);
        assert_eq!(l.get("k"), Some("new"));
    }

    #[test]
    fn empty_set_renders_nothing() {
        assert_eq!(LabelSet::empty().render(), "");
        assert_eq!(
            MetricKey::plain("serve.rejected").canonical(),
            "serve.rejected"
        );
    }

    #[test]
    fn canonical_form_is_prometheus_like() {
        let k = MetricKey::new(
            "serve.rejected",
            labels!("class" => "alexnet", "prio" => "high"),
        );
        assert_eq!(
            k.canonical(),
            "serve.rejected{class=\"alexnet\",prio=\"high\"}"
        );
    }

    #[test]
    fn values_are_escaped() {
        let l = LabelSet::from_pairs(labels!("k" => "a\"b\\c\nd"));
        assert_eq!(l.render(), "{k=\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn ordering_groups_series_of_one_name() {
        let mut keys = [
            MetricKey::new("b", labels!("x" => "2")),
            MetricKey::plain("b"),
            MetricKey::new("a", labels!("x" => "1")),
            MetricKey::new("b", labels!("x" => "1")),
        ];
        keys.sort();
        let canon: Vec<String> = keys.iter().map(MetricKey::canonical).collect();
        assert_eq!(canon, ["a{x=\"1\"}", "b", "b{x=\"1\"}", "b{x=\"2\"}"]);
    }

    #[test]
    fn get_on_sorted_pairs() {
        let l = LabelSet::from_pairs(labels!("b" => "2", "a" => "1", "c" => "3"));
        assert_eq!(l.get("a"), Some("1"));
        assert_eq!(l.get("b"), Some("2"));
        assert_eq!(l.get("c"), Some("3"));
        assert_eq!(l.get("d"), None);
    }
}
