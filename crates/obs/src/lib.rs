//! # usystolic-obs — zero-dependency observability
//!
//! Cycle-level tracing, a dimensional metrics registry and structured
//! JSON export for the uSystolic workspace, with **no external
//! dependencies**:
//!
//! * [`json`] — a hand-rolled JSON writer/parser and the [`ToJson`] trait
//!   (the workspace's stand-in for `serde::Serialize`);
//! * [`label`] — `(name, sorted label set)` metric keys and the
//!   [`labels!`] builder macro;
//! * [`metrics`] — counters, gauges, fixed-bucket histograms, streaming
//!   quantile sketches and windowed time series, all label-aware;
//! * [`sketch`] — a deterministic mergeable t-digest for p50/p95/p99
//!   without storing samples;
//! * [`series`] — rings of fixed-width cycle buckets for rolling rates;
//! * [`trace`] — a bounded-ring-buffer span/event tracer exporting Chrome
//!   `trace_event` JSON (loadable in `chrome://tracing` / Perfetto) and
//!   JSONL;
//! * [`export`] — Prometheus text exposition and a self-contained HTML
//!   report with inline SVG sparklines;
//! * [`diff`] — a snapshot differ with regression thresholds, the engine
//!   behind `obs_cli diff`.
//!
//! ## Sessions
//!
//! Instrumentation throughout the simulator and functional executors is
//! routed through a thread-local [`Session`]. By default **no session is
//! installed** and every instrumentation site reduces to one thread-local
//! load and a branch — no heap allocation, no formatting, no locking (a
//! property pinned by the `noop_overhead` integration test). To observe a
//! run:
//!
//! ```
//! use usystolic_obs as obs;
//!
//! obs::install(obs::Session::new());
//! // ... run instrumented code: Simulator::simulate, GemmExecutor::execute ...
//! obs::with(|o| o.metrics.count("my.counter", 1));
//! obs::count_labeled("my.rejected", obs::labels!("class" => "edge"), 1);
//! let session = obs::take().expect("installed above");
//! assert_eq!(session.metrics.counter("my.counter"), 1);
//! let chrome_json = session.tracer.export_chrome();
//! # let _ = chrome_json;
//! ```
//!
//! Sessions are deliberately thread-local: the simulator is
//! single-threaded per design point, and sweep harnesses that fan out
//! across threads install one session per worker and
//! [`Registry::absorb`] the results (histograms, sketches and series all
//! merge rather than clobber).
//!
//! ## Request correlation
//!
//! A session carries an optional `request_id` / `shard_id` pair. The
//! serve engine sets them around admission and batch dispatch, and every
//! span recorded through [`Session::correlated_args`] picks them up, so
//! one request's admission → batch → layer → tile path reconstructs in
//! Perfetto by filtering on `req`.

pub mod diff;
pub mod export;
pub mod json;
pub mod label;
pub mod metrics;
pub mod series;
pub mod sketch;
pub mod trace;

pub use diff::{DiffOptions, DiffReport, DiffRow, Direction};
pub use export::{html_report, prometheus_text};
pub use json::{JsonError, JsonValue, ToJson};
pub use label::{LabelSet, MetricKey};
pub use metrics::{Histogram, Registry, ABSORB_CONFLICTS};
pub use series::{SeriesBucket, TimeSeries};
pub use sketch::QuantileSketch;
pub use trace::{Phase, TraceEvent, Tracer, DEFAULT_CAPACITY, PID_SIM, PID_WALL};

use std::cell::RefCell;

/// One observability session: a tracer, a metrics registry, the virtual
/// cycle cursor the timing simulator advances, and the correlation
/// fields the serve engine threads through spans.
#[derive(Debug, Default)]
pub struct Session {
    /// Span/event ring buffer.
    pub tracer: Tracer,
    /// Counters, gauges, histograms, sketches, series.
    pub metrics: Registry,
    /// Virtual timeline cursor for simulated-cycle spans: each
    /// `Simulator::simulate` call places its layer span here and advances
    /// the cursor by the layer's runtime cycles.
    pub sim_cycles: u64,
    /// The request currently being served, if any; spans recorded while
    /// set carry a `req` argument.
    pub request_id: Option<u64>,
    /// The shard/instance currently executing, if any; spans recorded
    /// while set carry a `shard` argument.
    pub shard_id: Option<u64>,
}

impl Session {
    /// Creates a session with the default tracer capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a session whose tracer holds at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            tracer: Tracer::new(capacity),
            ..Self::default()
        }
    }

    /// Appends the active correlation fields (`req`, `shard`) to a span
    /// argument list and returns it — instrumentation sites pass their
    /// own args through this so traces become request-filterable.
    #[must_use]
    pub fn correlated_args(&self, mut args: Vec<(String, JsonValue)>) -> Vec<(String, JsonValue)> {
        if let Some(req) = self.request_id {
            args.push(("req".to_owned(), JsonValue::UInt(req)));
        }
        if let Some(shard) = self.shard_id {
            args.push(("shard".to_owned(), JsonValue::UInt(shard)));
        }
        args
    }
}

thread_local! {
    static SESSION: RefCell<Option<Session>> = const { RefCell::new(None) };
}

/// Installs a session on this thread, returning the previous one.
pub fn install(session: Session) -> Option<Session> {
    SESSION.with(|s| s.borrow_mut().replace(session))
}

/// Removes and returns this thread's session, disabling instrumentation.
pub fn take() -> Option<Session> {
    SESSION.with(|s| s.borrow_mut().take())
}

/// Whether a session is installed on this thread.
#[must_use]
pub fn is_enabled() -> bool {
    SESSION.with(|s| s.borrow().is_some())
}

/// Runs `f` against this thread's session, or does nothing when none is
/// installed. This is the single gate every instrumentation site goes
/// through: the disabled path is a thread-local load plus a branch.
pub fn with<F: FnOnce(&mut Session)>(f: F) {
    SESSION.with(|s| {
        if let Some(session) = s.borrow_mut().as_mut() {
            f(session);
        }
    });
}

/// Convenience: adds to a counter in the installed session (no-op when
/// disabled).
pub fn count(name: &str, v: u64) {
    with(|o| o.metrics.count(name, v));
}

/// Convenience: adds to a labeled counter (no-op when disabled; the
/// label slice is borrowed, so the disabled path does not allocate).
pub fn count_labeled(name: &str, labels: &[(&str, &str)], v: u64) {
    with(|o| o.metrics.count_labeled(name, labels, v));
}

/// Convenience: sets a gauge in the installed session (no-op when
/// disabled).
pub fn gauge(name: &str, v: f64) {
    with(|o| o.metrics.gauge(name, v));
}

/// Convenience: sets a labeled gauge (no-op when disabled).
pub fn gauge_labeled(name: &str, labels: &[(&str, &str)], v: f64) {
    with(|o| o.metrics.gauge_labeled(name, labels, v));
}

/// Convenience: records a histogram sample in the installed session
/// (no-op when disabled).
pub fn observe(name: &str, v: f64) {
    with(|o| o.metrics.observe(name, v));
}

/// Convenience: records a labeled histogram sample (no-op when
/// disabled).
pub fn observe_labeled(name: &str, labels: &[(&str, &str)], v: f64) {
    with(|o| o.metrics.observe_labeled(name, labels, v));
}

/// Convenience: records a streaming-quantile sample (no-op when
/// disabled).
pub fn record_quantile(name: &str, v: f64) {
    with(|o| o.metrics.record_quantile(name, v));
}

/// Convenience: records a labeled streaming-quantile sample (no-op when
/// disabled).
pub fn record_quantile_labeled(name: &str, labels: &[(&str, &str)], v: f64) {
    with(|o| o.metrics.record_quantile_labeled(name, labels, v));
}

/// Convenience: records a windowed time-series sample (no-op when
/// disabled).
pub fn series_record(name: &str, cycle: u64, v: f64) {
    with(|o| o.metrics.series_record(name, cycle, v));
}

/// Convenience: records a labeled windowed time-series sample (no-op
/// when disabled).
pub fn series_record_labeled(name: &str, labels: &[(&str, &str)], cycle: u64, v: f64) {
    with(|o| o.metrics.series_record_labeled(name, labels, cycle, v));
}

/// Sets (or clears) the request-correlation id on the installed session
/// (no-op when disabled).
pub fn set_request_id(id: Option<u64>) {
    with(|o| o.request_id = id);
}

/// Sets (or clears) the shard-correlation id on the installed session
/// (no-op when disabled).
pub fn set_shard_id(id: Option<u64>) {
    with(|o| o.shard_id = id);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_with_take_round_trip() {
        assert!(take().is_none());
        assert!(!is_enabled());
        install(Session::new());
        assert!(is_enabled());
        count("x", 2);
        count("x", 3);
        gauge("g", 1.0);
        observe("h", 4.0);
        let s = take().expect("session installed");
        assert_eq!(s.metrics.counter("x"), 5);
        assert_eq!(s.metrics.gauge_value("g"), Some(1.0));
        assert_eq!(s.metrics.histogram("h").unwrap().count(), 1);
        assert!(!is_enabled());
    }

    #[test]
    fn disabled_helpers_are_noops() {
        assert!(take().is_none());
        count("never", 1);
        gauge("never", 1.0);
        observe("never", 1.0);
        count_labeled("never", labels!("k" => "v"), 1);
        record_quantile("never", 1.0);
        series_record("never", 0, 1.0);
        set_request_id(Some(1));
        with(|_| panic!("must not run without a session"));
        assert!(take().is_none());
    }

    #[test]
    fn install_returns_previous_session() {
        install(Session::new());
        count("a", 1);
        let prev = install(Session::new()).expect("previous session");
        assert_eq!(prev.metrics.counter("a"), 1);
        let fresh = take().expect("fresh session");
        assert_eq!(fresh.metrics.counter("a"), 0);
    }

    #[test]
    fn labeled_helpers_hit_the_registry() {
        install(Session::new());
        count_labeled("c", labels!("k" => "v"), 2);
        gauge_labeled("g", labels!("k" => "v"), 1.5);
        observe_labeled("h", labels!("k" => "v"), 3.0);
        record_quantile_labeled("q", labels!("k" => "v"), 4.0);
        series_record_labeled("s", labels!("k" => "v"), 100, 1.0);
        let s = take().expect("installed");
        assert_eq!(s.metrics.counter_labeled("c", labels!("k" => "v")), 2);
        assert_eq!(
            s.metrics.gauge_value_labeled("g", labels!("k" => "v")),
            Some(1.5)
        );
        assert_eq!(
            s.metrics
                .histogram_labeled("h", labels!("k" => "v"))
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            s.metrics
                .sketch_labeled("q", labels!("k" => "v"))
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            s.metrics
                .series_labeled("s", labels!("k" => "v"))
                .unwrap()
                .window_count(),
            1
        );
    }

    #[test]
    fn correlation_ids_thread_into_span_args() {
        install(Session::new());
        set_request_id(Some(7));
        set_shard_id(Some(3));
        with(|o| {
            let args = o.correlated_args(vec![("x".to_owned(), JsonValue::UInt(1))]);
            let ts = o.tracer.now_us();
            o.tracer
                .complete("work", "test", PID_WALL, 0, ts, 1.0, args);
        });
        set_request_id(None);
        set_shard_id(None);
        let s = take().expect("installed");
        let ev = s.tracer.events().next().expect("one span");
        let args = &ev.args;
        assert!(args
            .iter()
            .any(|(k, v)| k == "req" && v.as_u64() == Some(7)));
        assert!(args
            .iter()
            .any(|(k, v)| k == "shard" && v.as_u64() == Some(3)));
        assert_eq!(s.request_id, None);
        assert_eq!(s.shard_id, None);
    }
}
