//! # usystolic-obs — zero-dependency observability
//!
//! Cycle-level tracing, a metrics registry and structured JSON export for
//! the uSystolic workspace, with **no external dependencies**:
//!
//! * [`json`] — a hand-rolled JSON writer/parser and the [`ToJson`] trait
//!   (the workspace's stand-in for `serde::Serialize`);
//! * [`metrics`] — counters, gauges and fixed-bucket histograms;
//! * [`trace`] — a bounded-ring-buffer span/event tracer exporting Chrome
//!   `trace_event` JSON (loadable in `chrome://tracing` / Perfetto) and
//!   JSONL.
//!
//! ## Sessions
//!
//! Instrumentation throughout the simulator and functional executors is
//! routed through a thread-local [`Session`]. By default **no session is
//! installed** and every instrumentation site reduces to one thread-local
//! load and a branch — no heap allocation, no formatting, no locking (a
//! property pinned by the `noop_overhead` integration test). To observe a
//! run:
//!
//! ```
//! use usystolic_obs as obs;
//!
//! obs::install(obs::Session::new());
//! // ... run instrumented code: Simulator::simulate, GemmExecutor::execute ...
//! obs::with(|o| o.metrics.count("my.counter", 1));
//! let session = obs::take().expect("installed above");
//! assert_eq!(session.metrics.counter("my.counter"), 1);
//! let chrome_json = session.tracer.export_chrome();
//! # let _ = chrome_json;
//! ```
//!
//! Sessions are deliberately thread-local: the simulator is
//! single-threaded per design point, and sweep harnesses that fan out
//! across threads install one session per worker and
//! [`Registry::absorb`] the results.

pub mod json;
pub mod metrics;
pub mod trace;

pub use json::{JsonError, JsonValue, ToJson};
pub use metrics::{Histogram, Registry};
pub use trace::{Phase, TraceEvent, Tracer, DEFAULT_CAPACITY, PID_SIM, PID_WALL};

use std::cell::RefCell;

/// One observability session: a tracer, a metrics registry and the
/// virtual cycle cursor the timing simulator advances.
#[derive(Debug, Default)]
pub struct Session {
    /// Span/event ring buffer.
    pub tracer: Tracer,
    /// Counters, gauges, histograms.
    pub metrics: Registry,
    /// Virtual timeline cursor for simulated-cycle spans: each
    /// `Simulator::simulate` call places its layer span here and advances
    /// the cursor by the layer's runtime cycles.
    pub sim_cycles: u64,
}

impl Session {
    /// Creates a session with the default tracer capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a session whose tracer holds at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            tracer: Tracer::new(capacity),
            metrics: Registry::new(),
            sim_cycles: 0,
        }
    }
}

thread_local! {
    static SESSION: RefCell<Option<Session>> = const { RefCell::new(None) };
}

/// Installs a session on this thread, returning the previous one.
pub fn install(session: Session) -> Option<Session> {
    SESSION.with(|s| s.borrow_mut().replace(session))
}

/// Removes and returns this thread's session, disabling instrumentation.
pub fn take() -> Option<Session> {
    SESSION.with(|s| s.borrow_mut().take())
}

/// Whether a session is installed on this thread.
#[must_use]
pub fn is_enabled() -> bool {
    SESSION.with(|s| s.borrow().is_some())
}

/// Runs `f` against this thread's session, or does nothing when none is
/// installed. This is the single gate every instrumentation site goes
/// through: the disabled path is a thread-local load plus a branch.
pub fn with<F: FnOnce(&mut Session)>(f: F) {
    SESSION.with(|s| {
        if let Some(session) = s.borrow_mut().as_mut() {
            f(session);
        }
    });
}

/// Convenience: adds to a counter in the installed session (no-op when
/// disabled).
pub fn count(name: &str, v: u64) {
    with(|o| o.metrics.count(name, v));
}

/// Convenience: sets a gauge in the installed session (no-op when
/// disabled).
pub fn gauge(name: &str, v: f64) {
    with(|o| o.metrics.gauge(name, v));
}

/// Convenience: records a histogram sample in the installed session
/// (no-op when disabled).
pub fn observe(name: &str, v: f64) {
    with(|o| o.metrics.observe(name, v));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_with_take_round_trip() {
        assert!(take().is_none());
        assert!(!is_enabled());
        install(Session::new());
        assert!(is_enabled());
        count("x", 2);
        count("x", 3);
        gauge("g", 1.0);
        observe("h", 4.0);
        let s = take().expect("session installed");
        assert_eq!(s.metrics.counter("x"), 5);
        assert_eq!(s.metrics.gauge_value("g"), Some(1.0));
        assert_eq!(s.metrics.histogram("h").unwrap().count(), 1);
        assert!(!is_enabled());
    }

    #[test]
    fn disabled_helpers_are_noops() {
        assert!(take().is_none());
        count("never", 1);
        gauge("never", 1.0);
        observe("never", 1.0);
        with(|_| panic!("must not run without a session"));
        assert!(take().is_none());
    }

    #[test]
    fn install_returns_previous_session() {
        install(Session::new());
        count("a", 1);
        let prev = install(Session::new()).expect("previous session");
        assert_eq!(prev.metrics.counter("a"), 1);
        let fresh = take().expect("fresh session");
        assert_eq!(fresh.metrics.counter("a"), 0);
    }
}
