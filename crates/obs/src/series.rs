//! Windowed time series: a ring of fixed-width cycle buckets per metric.
//!
//! Counters answer "how many in total"; an autoscaler needs "how many
//! *lately*". A [`TimeSeries`] aggregates samples into contiguous
//! fixed-width buckets on the simulated-cycle axis and retains only the
//! most recent `capacity` buckets, so the serve engine can expose
//! rolling arrival / rejection / queue-depth rates at O(capacity) memory
//! regardless of run length. Buckets are addressed by absolute index
//! (`cycle / bucket_width`), which makes two series over the same clock
//! mergeable bucket-for-bucket.
//!
//! Everything is integer bucket arithmetic — no wall clock, no rounding
//! modes — so the series is a pure function of the (cycle, value) sample
//! sequence.

use crate::json::{JsonValue, ToJson};
use std::collections::VecDeque;

/// Default bucket width in cycles when a series is recorded without
/// prior registration.
pub const DEFAULT_BUCKET_WIDTH: u64 = 4096;

/// Default number of retained buckets.
pub const DEFAULT_CAPACITY: usize = 64;

/// One aggregation bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SeriesBucket {
    /// Samples recorded in this bucket.
    pub count: u64,
    /// Sum of sample values.
    pub sum: f64,
}

impl SeriesBucket {
    /// Mean value of the bucket, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A ring of fixed-width cycle buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    bucket_width: u64,
    capacity: usize,
    /// Absolute index (`cycle / bucket_width`) of `buckets[0]`.
    start: u64,
    buckets: VecDeque<SeriesBucket>,
    /// Samples that arrived for buckets already evicted from the window.
    late: u64,
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::new(DEFAULT_BUCKET_WIDTH, DEFAULT_CAPACITY)
    }
}

impl TimeSeries {
    /// Creates a series with the given bucket width (cycles) and retained
    /// bucket count. Zero arguments are clamped to 1.
    #[must_use]
    pub fn new(bucket_width: u64, capacity: usize) -> Self {
        Self {
            bucket_width: bucket_width.max(1),
            capacity: capacity.max(1),
            start: 0,
            buckets: VecDeque::new(),
            late: 0,
        }
    }

    /// Records a sample at the given cycle.
    pub fn record(&mut self, cycle: u64, value: f64) {
        self.add_bucket(cycle / self.bucket_width, 1, value);
    }

    /// Adds an aggregate directly into the bucket with the given
    /// absolute index.
    fn add_bucket(&mut self, idx: u64, count: u64, sum: f64) {
        if self.buckets.is_empty() {
            self.start = idx;
            self.buckets.push_back(SeriesBucket::default());
        }
        if idx < self.start {
            self.late += count;
            return;
        }
        // Grow the window forward to cover `idx`, evicting from the back
        // of history when it exceeds capacity.
        while idx >= self.start + self.buckets.len() as u64 {
            if self.buckets.len() == self.capacity {
                self.buckets.pop_front();
                self.start += 1;
            }
            self.buckets.push_back(SeriesBucket::default());
        }
        let slot = (idx - self.start) as usize;
        let b = &mut self.buckets[slot];
        b.count += count;
        b.sum += sum;
    }

    /// Folds another series into this one bucket-for-bucket. Returns
    /// `false` (and changes nothing) when the bucket widths differ.
    pub fn merge(&mut self, other: &TimeSeries) -> bool {
        if other.bucket_width != self.bucket_width {
            return false;
        }
        self.late += other.late;
        for (i, b) in other.buckets.iter().enumerate() {
            if b.count > 0 {
                self.add_bucket(other.start + i as u64, b.count, b.sum);
            }
        }
        true
    }

    /// The bucket width in cycles.
    #[must_use]
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// The retained-bucket capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The first cycle covered by the retained window.
    #[must_use]
    pub fn start_cycle(&self) -> u64 {
        self.start * self.bucket_width
    }

    /// Number of buckets currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when no samples were ever recorded in the current window.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Samples that fell before the retained window and were dropped.
    #[must_use]
    pub fn late_samples(&self) -> u64 {
        self.late
    }

    /// Total sample count across retained buckets.
    #[must_use]
    pub fn window_count(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// Iterates `(bucket_start_cycle, bucket)` oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SeriesBucket)> {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, b)| ((self.start + i as u64) * self.bucket_width, b))
    }

    /// Mean event rate over the retained window, in events per cycle.
    #[must_use]
    pub fn window_rate_per_cycle(&self) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        self.window_count() as f64 / (self.buckets.len() as u64 * self.bucket_width) as f64
    }
}

impl ToJson for TimeSeries {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("bucket_width", self.bucket_width.to_json()),
            ("start_cycle", self.start_cycle().to_json()),
            ("late", self.late.to_json()),
            (
                "counts",
                JsonValue::Array(self.buckets.iter().map(|b| b.count.to_json()).collect()),
            ),
            (
                "sums",
                JsonValue::Array(self.buckets.iter().map(|b| b.sum.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_width_buckets() {
        let mut s = TimeSeries::new(10, 8);
        s.record(0, 1.0);
        s.record(9, 2.0);
        s.record(10, 3.0);
        s.record(25, 4.0);
        assert_eq!(s.len(), 3);
        let buckets: Vec<(u64, u64, f64)> = s.iter().map(|(c, b)| (c, b.count, b.sum)).collect();
        assert_eq!(buckets, [(0, 2, 3.0), (10, 1, 3.0), (20, 1, 4.0)]);
        assert_eq!(s.window_count(), 4);
    }

    #[test]
    fn window_evicts_oldest_buckets() {
        let mut s = TimeSeries::new(1, 4);
        for c in 0..10 {
            s.record(c, 1.0);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.start_cycle(), 6);
        assert_eq!(s.window_count(), 4);
    }

    #[test]
    fn late_samples_are_counted_not_folded() {
        let mut s = TimeSeries::new(1, 2);
        s.record(10, 1.0);
        s.record(11, 1.0);
        s.record(3, 1.0);
        assert_eq!(s.late_samples(), 1);
        assert_eq!(s.window_count(), 2);
    }

    #[test]
    fn sparse_gaps_create_empty_buckets() {
        let mut s = TimeSeries::new(5, 8);
        s.record(0, 1.0);
        s.record(20, 1.0);
        assert_eq!(s.len(), 5);
        let counts: Vec<u64> = s.iter().map(|(_, b)| b.count).collect();
        assert_eq!(counts, [1, 0, 0, 0, 1]);
    }

    #[test]
    fn merge_adds_bucket_for_bucket() {
        let mut a = TimeSeries::new(10, 8);
        a.record(5, 1.0);
        a.record(15, 2.0);
        let mut b = TimeSeries::new(10, 8);
        b.record(15, 3.0);
        b.record(35, 4.0);
        assert!(a.merge(&b));
        let buckets: Vec<(u64, u64, f64)> = a.iter().map(|(c, x)| (c, x.count, x.sum)).collect();
        assert_eq!(
            buckets,
            [(0, 1, 1.0), (10, 2, 5.0), (20, 0, 0.0), (30, 1, 4.0)]
        );
    }

    #[test]
    fn merge_rejects_mismatched_widths() {
        let mut a = TimeSeries::new(10, 8);
        a.record(5, 1.0);
        let mut b = TimeSeries::new(20, 8);
        b.record(5, 1.0);
        assert!(!a.merge(&b));
        assert_eq!(a.window_count(), 1);
    }

    #[test]
    fn rate_over_window() {
        let mut s = TimeSeries::new(10, 8);
        for c in [0, 5, 12, 18, 25, 29] {
            s.record(c, 1.0);
        }
        // 6 events over 3 buckets of width 10.
        assert!((s.window_rate_per_cycle() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn json_shape() {
        let mut s = TimeSeries::new(10, 4);
        s.record(3, 2.0);
        s.record(14, 4.0);
        let j = s.to_json();
        assert_eq!(j.get("bucket_width").unwrap().as_u64(), Some(10));
        assert_eq!(j.get("counts").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(j.get("late").unwrap().as_u64(), Some(0));
    }
}
