//! Registry exporters: Prometheus text exposition and a self-contained
//! HTML report.
//!
//! Both exporters are pure functions of a [`Registry`] snapshot and emit
//! deterministic output (the registry's `BTreeMap` ordering carries
//! through), so exported artifacts are diffable and CI can grep them.
//!
//! * [`prometheus_text`] follows the text exposition format version
//!   0.0.4: `# TYPE` headers, `name{label="value"}` sample lines,
//!   cumulative `_bucket{le=…}` histogram series, and `quantile=`-labeled
//!   summary lines for the streaming sketches. Metric names are
//!   sanitized (`.` → `_`) to the Prometheus grammar.
//! * [`html_report`] renders one standalone HTML page — no external
//!   assets — with metric tables and inline SVG sparklines for every
//!   windowed time series, so a serve run's rolling arrival/rejection
//!   rates are viewable straight from the artifact store.

use crate::label::LabelSet;
use crate::metrics::Registry;
use crate::series::TimeSeries;

/// Rewrites a metric name into the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots and other separators become `_`).
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Renders a label set, optionally extended with extra pairs (`le`,
/// `quantile`), as the `{…}` clause of a sample line.
fn label_clause(labels: &LabelSet, extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Emits a `# TYPE` header once per metric name within a sorted
/// iteration.
struct TypeHeader<'a> {
    kind: &'a str,
    last: Option<String>,
}

impl<'a> TypeHeader<'a> {
    fn new(kind: &'a str) -> Self {
        Self { kind, last: None }
    }

    fn emit(&mut self, out: &mut String, sanitized: &str) {
        if self.last.as_deref() != Some(sanitized) {
            out.push_str("# TYPE ");
            out.push_str(sanitized);
            out.push(' ');
            out.push_str(self.kind);
            out.push('\n');
            self.last = Some(sanitized.to_owned());
        }
    }
}

/// Exports the registry in the Prometheus text exposition format.
///
/// Counters, gauges and histograms map to their native Prometheus
/// types; quantile sketches are exposed as summaries with
/// `quantile="0.5" / "0.95" / "0.99"` series. Windowed time series have
/// no Prometheus equivalent and are exposed through the JSON snapshot
/// and [`html_report`] instead.
#[must_use]
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();

    let mut header = TypeHeader::new("counter");
    for (key, v) in registry.counters() {
        let name = sanitize_metric_name(key.name());
        header.emit(&mut out, &name);
        out.push_str(&name);
        out.push_str(&label_clause(key.labels(), &[]));
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }

    let mut header = TypeHeader::new("gauge");
    for (key, v) in registry.gauges() {
        let name = sanitize_metric_name(key.name());
        header.emit(&mut out, &name);
        out.push_str(&name);
        out.push_str(&label_clause(key.labels(), &[]));
        out.push(' ');
        out.push_str(&fmt_value(v));
        out.push('\n');
    }

    let mut header = TypeHeader::new("histogram");
    for (key, h) in registry.histograms() {
        let name = sanitize_metric_name(key.name());
        header.emit(&mut out, &name);
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds().iter().zip(h.counts()) {
            cumulative += count;
            out.push_str(&name);
            out.push_str("_bucket");
            out.push_str(&label_clause(key.labels(), &[("le", &fmt_value(*bound))]));
            out.push(' ');
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
        out.push_str(&name);
        out.push_str("_bucket");
        out.push_str(&label_clause(key.labels(), &[("le", "+Inf")]));
        out.push(' ');
        out.push_str(&h.count().to_string());
        out.push('\n');
        out.push_str(&name);
        out.push_str("_sum");
        out.push_str(&label_clause(key.labels(), &[]));
        out.push(' ');
        out.push_str(&fmt_value(h.sum()));
        out.push('\n');
        out.push_str(&name);
        out.push_str("_count");
        out.push_str(&label_clause(key.labels(), &[]));
        out.push(' ');
        out.push_str(&h.count().to_string());
        out.push('\n');
    }

    let mut header = TypeHeader::new("summary");
    for (key, s) in registry.sketches() {
        let name = sanitize_metric_name(key.name());
        header.emit(&mut out, &name);
        for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            if let Some(v) = s.quantile(q) {
                out.push_str(&name);
                out.push_str(&label_clause(key.labels(), &[("quantile", label)]));
                out.push(' ');
                out.push_str(&fmt_value(v));
                out.push('\n');
            }
        }
        out.push_str(&name);
        out.push_str("_sum");
        out.push_str(&label_clause(key.labels(), &[]));
        out.push(' ');
        out.push_str(&fmt_value(s.sum()));
        out.push('\n');
        out.push_str(&name);
        out.push_str("_count");
        out.push_str(&label_clause(key.labels(), &[]));
        out.push(' ');
        out.push_str(&s.count().to_string());
        out.push('\n');
    }

    out
}

fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

/// Renders one series as an inline SVG sparkline of per-bucket counts.
fn sparkline_svg(series: &TimeSeries) -> String {
    const W: f64 = 240.0;
    const H: f64 = 36.0;
    const PAD: f64 = 2.0;
    let counts: Vec<u64> = series.iter().map(|(_, b)| b.count).collect();
    if counts.is_empty() {
        return String::from("<svg width=\"240\" height=\"36\"></svg>");
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1) as f64;
    let n = counts.len();
    let step = if n > 1 {
        (W - 2.0 * PAD) / (n as f64 - 1.0)
    } else {
        0.0
    };
    let mut points = String::new();
    for (i, c) in counts.iter().enumerate() {
        let x = PAD + step * i as f64;
        let y = H - PAD - (H - 2.0 * PAD) * (*c as f64 / max);
        if i > 0 {
            points.push(' ');
        }
        points.push_str(&format!("{x:.1},{y:.1}"));
    }
    format!(
        "<svg width=\"240\" height=\"36\" viewBox=\"0 0 240 36\" \
         role=\"img\"><polyline fill=\"none\" stroke=\"#2b6cb0\" \
         stroke-width=\"1.5\" points=\"{points}\"/></svg>"
    )
}

fn table_open(out: &mut String, title: &str, headers: &[&str]) {
    out.push_str("<h2>");
    out.push_str(&escape_html(title));
    out.push_str("</h2>\n<table>\n<tr>");
    for h in headers {
        out.push_str("<th>");
        out.push_str(h);
        out.push_str("</th>");
    }
    out.push_str("</tr>\n");
}

fn td(out: &mut String, cell: &str) {
    out.push_str("<td>");
    out.push_str(&escape_html(cell));
    out.push_str("</td>");
}

/// Renders the registry as one self-contained HTML page: metric tables
/// plus an inline SVG sparkline per windowed time series. No external
/// assets, scripts or stylesheets are referenced.
#[must_use]
pub fn html_report(title: &str, registry: &Registry) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<title>");
    out.push_str(&escape_html(title));
    out.push_str("</title>\n<style>\n");
    out.push_str(
        "body{font-family:ui-monospace,monospace;margin:2em;color:#1a202c}\n\
         table{border-collapse:collapse;margin-bottom:1.5em}\n\
         th,td{border:1px solid #cbd5e0;padding:3px 10px;text-align:left;\
         font-size:13px}\nth{background:#edf2f7}\nh1{font-size:20px}\n\
         h2{font-size:16px;margin-top:1.2em}\n",
    );
    out.push_str("</style>\n</head>\n<body>\n<h1>");
    out.push_str(&escape_html(title));
    out.push_str("</h1>\n");

    if registry.counters().next().is_some() {
        table_open(&mut out, "Counters", &["metric", "value"]);
        for (key, v) in registry.counters() {
            out.push_str("<tr>");
            td(&mut out, &key.canonical());
            td(&mut out, &v.to_string());
            out.push_str("</tr>\n");
        }
        out.push_str("</table>\n");
    }

    if registry.gauges().next().is_some() {
        table_open(&mut out, "Gauges", &["metric", "value"]);
        for (key, v) in registry.gauges() {
            out.push_str("<tr>");
            td(&mut out, &key.canonical());
            td(&mut out, &fmt_value(v));
            out.push_str("</tr>\n");
        }
        out.push_str("</table>\n");
    }

    if registry.histograms().next().is_some() {
        table_open(
            &mut out,
            "Histograms",
            &["metric", "count", "sum", "mean", "min", "max"],
        );
        for (key, h) in registry.histograms() {
            out.push_str("<tr>");
            td(&mut out, &key.canonical());
            td(&mut out, &h.count().to_string());
            td(&mut out, &fmt_value(h.sum()));
            td(&mut out, &fmt_value(h.mean()));
            td(
                &mut out,
                &h.min_value().map_or_else(|| "-".into(), fmt_value),
            );
            td(
                &mut out,
                &h.max_value().map_or_else(|| "-".into(), fmt_value),
            );
            out.push_str("</tr>\n");
        }
        out.push_str("</table>\n");
    }

    if registry.sketches().next().is_some() {
        table_open(
            &mut out,
            "Quantile sketches",
            &["metric", "count", "p50", "p95", "p99", "min", "max"],
        );
        for (key, s) in registry.sketches() {
            out.push_str("<tr>");
            td(&mut out, &key.canonical());
            td(&mut out, &s.count().to_string());
            for q in [0.50, 0.95, 0.99] {
                td(
                    &mut out,
                    &s.quantile(q).map_or_else(|| "-".into(), fmt_value),
                );
            }
            td(&mut out, &s.min().map_or_else(|| "-".into(), fmt_value));
            td(&mut out, &s.max().map_or_else(|| "-".into(), fmt_value));
            out.push_str("</tr>\n");
        }
        out.push_str("</table>\n");
    }

    if registry.all_series().next().is_some() {
        table_open(
            &mut out,
            "Windowed series",
            &[
                "metric",
                "sparkline (per-bucket count)",
                "window events",
                "bucket width",
                "rate/cycle",
            ],
        );
        for (key, s) in registry.all_series() {
            out.push_str("<tr>");
            td(&mut out, &key.canonical());
            out.push_str("<td>");
            out.push_str(&sparkline_svg(s));
            out.push_str("</td>");
            td(&mut out, &s.window_count().to_string());
            td(&mut out, &s.bucket_width().to_string());
            td(&mut out, &format!("{:.6}", s.window_rate_per_cycle()));
            out.push_str("</tr>\n");
        }
        out.push_str("</table>\n");
    }

    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.count("sim.dram_bytes", 1024);
        r.count_labeled(
            "serve.rejected",
            labels!("class" => "edge", "prio" => "high"),
            3,
        );
        r.count_labeled(
            "serve.rejected",
            labels!("class" => "edge", "prio" => "normal"),
            5,
        );
        r.gauge("sim.utilization", 0.75);
        r.register_histogram("serve.batch", &[1.0, 2.0, 4.0]);
        r.observe("serve.batch", 1.0);
        r.observe("serve.batch", 3.0);
        r.observe("serve.batch", 9.0);
        for v in 1..=100 {
            r.record_quantile("serve.latency", f64::from(v));
        }
        for c in 0..32 {
            r.series_record("serve.arrivals", c * 100, 1.0);
        }
        r
    }

    #[test]
    fn prometheus_counters_and_type_headers() {
        let text = prometheus_text(&sample_registry());
        assert!(text.contains("# TYPE sim_dram_bytes counter\n"));
        assert!(
            text.contains("\nsim_dram_bytes 1024\n") || text.starts_with("# TYPE serve_rejected")
        );
        assert!(text.contains("serve_rejected{class=\"edge\",prio=\"high\"} 3\n"));
        assert!(text.contains("serve_rejected{class=\"edge\",prio=\"normal\"} 5\n"));
        // One TYPE header per family, not per series.
        assert_eq!(text.matches("# TYPE serve_rejected counter").count(), 1);
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        let text = prometheus_text(&sample_registry());
        assert!(text.contains("# TYPE serve_batch histogram\n"));
        assert!(text.contains("serve_batch_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("serve_batch_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("serve_batch_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("serve_batch_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("serve_batch_sum 13\n"));
        assert!(text.contains("serve_batch_count 3\n"));
    }

    #[test]
    fn prometheus_sketch_is_a_summary() {
        let text = prometheus_text(&sample_registry());
        assert!(text.contains("# TYPE serve_latency summary\n"));
        assert!(text.contains("serve_latency{quantile=\"0.5\"}"));
        assert!(text.contains("serve_latency{quantile=\"0.99\"}"));
        assert!(text.contains("serve_latency_count 100\n"));
    }

    #[test]
    fn prometheus_output_is_deterministic() {
        let a = prometheus_text(&sample_registry());
        let b = prometheus_text(&sample_registry());
        assert_eq!(a, b);
    }

    #[test]
    fn sanitizer_maps_to_grammar() {
        assert_eq!(sanitize_metric_name("sim.dram_bytes"), "sim_dram_bytes");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn html_report_is_self_contained() {
        let html = html_report("serve run", &sample_registry());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<h1>serve run</h1>"));
        assert!(html.contains("serve.rejected{class=&quot;edge&quot;"));
        assert!(html.contains("<svg"));
        assert!(html.contains("polyline"));
        // Self-contained: no external references.
        assert!(!html.contains("http://"));
        assert!(!html.contains("https://"));
        assert!(!html.contains("<script"));
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let r = Registry::new();
        assert_eq!(prometheus_text(&r), "");
        let html = html_report("empty", &r);
        assert!(html.contains("<h1>empty</h1>"));
    }
}
