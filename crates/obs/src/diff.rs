//! Snapshot diffing with regression thresholds — the engine behind
//! `obs_cli diff`, the repo's first automated perf gate.
//!
//! Two JSON snapshots (a metrics registry dump, a `BENCH_kernel.json`
//! bench artifact, a `--json` CLI report — any JSON object tree) are
//! flattened to dotted numeric keys and compared key by key. Each key is
//! classified by a direction heuristic — `speedup` and `throughput`
//! should go up, `_us` and `stall_cycles` should go down — and a change
//! beyond the configured threshold in the *bad* direction counts as a
//! regression. CI runs this against the committed kernel bench snapshot
//! and fails the build on a >20 % throughput drop.

use crate::json::{JsonValue, ToJson};
use std::collections::BTreeMap;

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (`speedup`, `throughput`, …).
    HigherIsBetter,
    /// Smaller is better (`_us`, `latency`, `stall_cycles`, …).
    LowerIsBetter,
    /// No heuristic matched: reported, never gated.
    Unknown,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher_is_better",
            Direction::LowerIsBetter => "lower_is_better",
            Direction::Unknown => "unknown",
        }
    }
}

/// Substrings marking a key as higher-is-better.
const HIGHER_TOKENS: &[&str] = &[
    "speedup",
    "throughput",
    "per_s",
    "efficiency",
    "utilization",
    "admitted",
    "completed",
    "consistent",
    "match",
    "bit_exact",
    "inferences",
    "lifetime",
];

/// Substrings marking a key as lower-is-better.
const LOWER_TOKENS: &[&str] = &[
    "_us",
    "_ms",
    "_ns",
    "latency",
    "cycles",
    "stall",
    "dropped",
    "rejected",
    "missed",
    "queue_wait",
    "overhead",
    "conflicts",
    "late",
    "_bytes",
];

/// Classifies a flattened key by substring heuristics. Higher-is-better
/// tokens win ties (so `throughput_cycles`-style compounds lean on the
/// more specific head noun).
#[must_use]
pub fn classify(key: &str) -> Direction {
    let lower = key.to_ascii_lowercase();
    if HIGHER_TOKENS.iter().any(|t| lower.contains(t)) {
        return Direction::HigherIsBetter;
    }
    if LOWER_TOKENS.iter().any(|t| lower.contains(t)) {
        return Direction::LowerIsBetter;
    }
    Direction::Unknown
}

/// Flattens a JSON tree to dotted numeric keys: objects nest with `.`,
/// arrays index with `.N`, booleans map to 0/1, strings and nulls are
/// skipped.
#[must_use]
pub fn flatten(value: &JsonValue) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    flatten_into(value, String::new(), &mut out);
    out
}

fn flatten_into(value: &JsonValue, prefix: String, out: &mut BTreeMap<String, f64>) {
    match value {
        JsonValue::Object(pairs) => {
            for (k, v) in pairs {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(v, key, out);
            }
        }
        JsonValue::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                let key = if prefix.is_empty() {
                    i.to_string()
                } else {
                    format!("{prefix}.{i}")
                };
                flatten_into(v, key, out);
            }
        }
        JsonValue::Bool(b) => {
            out.insert(prefix, if *b { 1.0 } else { 0.0 });
        }
        other => {
            if let Some(n) = other.as_f64() {
                out.insert(prefix, n);
            }
        }
    }
}

/// Options for a diff run.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Percent change beyond which a gated key regresses (default 20).
    pub threshold_pct: f64,
    /// When non-empty, only keys containing one of these substrings
    /// (case-insensitive) can fail the gate; everything else is
    /// informational.
    pub gates: Vec<String>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            threshold_pct: 20.0,
            gates: Vec::new(),
        }
    }
}

/// One compared key.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Flattened dotted key.
    pub key: String,
    /// Value in the old snapshot.
    pub old: f64,
    /// Value in the new snapshot.
    pub new: f64,
    /// Absolute change (`new - old`).
    pub delta: f64,
    /// Percent change relative to `|old|`, when `old != 0`.
    pub pct: Option<f64>,
    /// The direction heuristic's verdict for this key.
    pub direction: Direction,
    /// True when this key moved beyond the threshold in the bad
    /// direction *and* matched the gate filter.
    pub regression: bool,
}

impl ToJson for DiffRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("key", JsonValue::Str(self.key.clone())),
            ("old", self.old.to_json()),
            ("new", self.new.to_json()),
            ("delta", self.delta.to_json()),
            ("pct", self.pct.to_json()),
            (
                "direction",
                JsonValue::Str(self.direction.as_str().to_owned()),
            ),
            ("regression", self.regression.to_json()),
        ])
    }
}

/// The result of diffing two snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Keys present in both snapshots, in key order.
    pub rows: Vec<DiffRow>,
    /// Keys only the old snapshot has.
    pub only_old: Vec<String>,
    /// Keys only the new snapshot has.
    pub only_new: Vec<String>,
}

impl DiffReport {
    /// Number of regressed keys.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regression).count()
    }

    /// True when any gated key regressed.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|r| r.regression)
    }
}

impl ToJson for DiffReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "rows",
                JsonValue::Array(self.rows.iter().map(ToJson::to_json).collect()),
            ),
            ("only_old", self.only_old.to_json()),
            ("only_new", self.only_new.to_json()),
            ("regressions", self.regressions().to_json()),
        ])
    }
}

fn gate_matches(gates: &[String], key: &str) -> bool {
    if gates.is_empty() {
        return true;
    }
    let lower = key.to_ascii_lowercase();
    gates
        .iter()
        .any(|g| lower.contains(&g.to_ascii_lowercase()))
}

/// Diffs two parsed snapshots.
#[must_use]
pub fn diff_snapshots(old: &JsonValue, new: &JsonValue, opts: &DiffOptions) -> DiffReport {
    let old_flat = flatten(old);
    let new_flat = flatten(new);
    let mut report = DiffReport::default();

    for (key, &old_v) in &old_flat {
        match new_flat.get(key) {
            None => report.only_old.push(key.clone()),
            Some(&new_v) => {
                let delta = new_v - old_v;
                // Exact-zero baseline sentinel, not a tolerance check:
                // any non-zero baseline yields a percentage. lint: allow(float-eq)
                let pct = if old_v == 0.0 {
                    None
                } else {
                    Some(delta / old_v.abs() * 100.0)
                };
                let direction = classify(key);
                let worse = match (direction, pct) {
                    (Direction::HigherIsBetter, Some(p)) => p < -opts.threshold_pct,
                    (Direction::LowerIsBetter, Some(p)) => p > opts.threshold_pct,
                    // old == 0: a lower-is-better key springing to life
                    // (e.g. dropped events) counts; higher-is-better
                    // collapsing to a zero baseline cannot be scored.
                    (Direction::LowerIsBetter, None) => new_v > 0.0,
                    _ => false,
                };
                report.rows.push(DiffRow {
                    key: key.clone(),
                    old: old_v,
                    new: new_v,
                    delta,
                    pct,
                    direction,
                    regression: worse && gate_matches(&opts.gates, key),
                });
            }
        }
    }
    for key in new_flat.keys() {
        if !old_flat.contains_key(key) {
            report.only_new.push(key.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> JsonValue {
        JsonValue::parse(s).expect("test JSON")
    }

    #[test]
    fn flatten_handles_nesting_arrays_and_bools() {
        let v = parse(r#"{"a":{"b":1.5},"list":[10,20],"ok":true,"name":"x"}"#);
        let flat = flatten(&v);
        assert_eq!(flat.get("a.b"), Some(&1.5));
        assert_eq!(flat.get("list.0"), Some(&10.0));
        assert_eq!(flat.get("list.1"), Some(&20.0));
        assert_eq!(flat.get("ok"), Some(&1.0));
        assert!(!flat.contains_key("name"));
    }

    #[test]
    fn direction_heuristics() {
        assert_eq!(classify("speedup"), Direction::HigherIsBetter);
        assert_eq!(classify("throughput_per_s"), Direction::HigherIsBetter);
        assert_eq!(classify("scaling_efficiency"), Direction::HigherIsBetter);
        assert_eq!(classify("packed_us"), Direction::LowerIsBetter);
        assert_eq!(classify("serve.p99_cycles"), Direction::LowerIsBetter);
        assert_eq!(classify("stall_cycles"), Direction::LowerIsBetter);
        assert_eq!(classify("tile"), Direction::Unknown);
    }

    #[test]
    fn speedup_drop_beyond_threshold_regresses() {
        let old = parse(r#"{"speedup":32.9}"#);
        let new = parse(r#"{"speedup":20.0}"#);
        let report = diff_snapshots(&old, &new, &DiffOptions::default());
        assert!(report.has_regressions());
        let row = &report.rows[0];
        assert!(row.regression);
        assert!(row.pct.unwrap() < -20.0);
    }

    #[test]
    fn small_movement_passes() {
        let old = parse(r#"{"speedup":32.9,"packed_us":253.0}"#);
        let new = parse(r#"{"speedup":30.0,"packed_us":280.0}"#);
        let report = diff_snapshots(&old, &new, &DiffOptions::default());
        assert!(!report.has_regressions());
        assert_eq!(report.rows.len(), 2);
    }

    #[test]
    fn latency_rise_beyond_threshold_regresses() {
        let old = parse(r#"{"packed_us":100.0}"#);
        let new = parse(r#"{"packed_us":150.0}"#);
        let report = diff_snapshots(&old, &new, &DiffOptions::default());
        assert!(report.has_regressions());
    }

    #[test]
    fn improvement_never_regresses() {
        let old = parse(r#"{"speedup":10.0,"packed_us":500.0}"#);
        let new = parse(r#"{"speedup":40.0,"packed_us":100.0}"#);
        let report = diff_snapshots(&old, &new, &DiffOptions::default());
        assert!(!report.has_regressions());
    }

    #[test]
    fn unknown_direction_is_reported_not_gated() {
        let old = parse(r#"{"tile":16}"#);
        let new = parse(r#"{"tile":4}"#);
        let report = diff_snapshots(&old, &new, &DiffOptions::default());
        assert!(!report.has_regressions());
        assert_eq!(report.rows[0].direction, Direction::Unknown);
    }

    #[test]
    fn gates_restrict_failures() {
        let old = parse(r#"{"speedup":30.0,"serial_us":100.0}"#);
        let new = parse(r#"{"speedup":30.0,"serial_us":1000.0}"#);
        let gated = DiffOptions {
            threshold_pct: 20.0,
            gates: vec!["speedup".to_owned()],
        };
        // serial_us blew up, but only speedup is gated.
        let report = diff_snapshots(&old, &new, &gated);
        assert!(!report.has_regressions());
        // Ungated, the same diff fails.
        let report = diff_snapshots(&old, &new, &DiffOptions::default());
        assert!(report.has_regressions());
    }

    #[test]
    fn zero_baseline_lower_is_better_counts_new_badness() {
        let old = parse(r#"{"dropped":0}"#);
        let new = parse(r#"{"dropped":12}"#);
        let report = diff_snapshots(&old, &new, &DiffOptions::default());
        assert!(report.has_regressions());
    }

    #[test]
    fn disjoint_keys_are_listed() {
        let old = parse(r#"{"a":1,"b":2}"#);
        let new = parse(r#"{"b":2,"c":3}"#);
        let report = diff_snapshots(&old, &new, &DiffOptions::default());
        assert_eq!(report.only_old, ["a"]);
        assert_eq!(report.only_new, ["c"]);
        assert_eq!(report.rows.len(), 1);
    }

    #[test]
    fn boolean_flip_to_false_regresses_match_keys() {
        let old = parse(r#"{"checksums_match":true}"#);
        let new = parse(r#"{"checksums_match":false}"#);
        let report = diff_snapshots(&old, &new, &DiffOptions::default());
        // 1 -> 0 is a 100% drop on a higher-is-better key.
        assert!(report.has_regressions());
    }

    #[test]
    fn report_json_shape() {
        let old = parse(r#"{"speedup":10.0}"#);
        let new = parse(r#"{"speedup":5.0}"#);
        let report = diff_snapshots(&old, &new, &DiffOptions::default());
        let j = report.to_json();
        assert_eq!(j.get("regressions").unwrap().as_u64(), Some(1));
        let rows = j.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].get("key").unwrap().as_str(), Some("speedup"));
        assert_eq!(rows[0].get("regression").unwrap().as_bool(), Some(true));
    }
}
