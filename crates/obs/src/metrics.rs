//! A dimensional metrics registry: counters, gauges, fixed-bucket
//! histograms, streaming-quantile sketches and windowed time series,
//! keyed by `(name, sorted label set)` and exported as a JSON snapshot.
//!
//! The registry is the accounting side of the observability layer: the
//! simulator and the functional executors fold their per-layer numbers
//! (DRAM/SRAM bytes, stall cycles, MAC windows, early-termination savings,
//! tile folds) into it, and experiment binaries dump one snapshot per run
//! as a before/after artifact for performance work. Every metric family
//! comes in an unlabeled flavour (`count`, `gauge`, `observe`, …) and a
//! labeled flavour (`count_labeled`, …) taking a `&[(&str, &str)]` slice —
//! typically built with the [`labels!`](crate::labels) macro — so one
//! logical signal can be split per scheme, shard, or priority class.
//! All maps are `BTreeMap`s over [`MetricKey`], which orders by name then
//! sorted labels: snapshots and exports are deterministic.

use crate::json::{JsonValue, ToJson};
use crate::label::MetricKey;
use crate::series::TimeSeries;
use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;

/// Counter incremented by [`Registry::absorb`] when two histograms or
/// series with the same key cannot be merged (mismatched bucket bounds
/// or widths).
pub const ABSORB_CONFLICTS: &str = "obs.absorb_conflicts";

/// A fixed-bucket histogram with an implicit overflow (`+Inf`) bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given upper bucket bounds
    /// (inclusive). A sample `v` falls into the first bucket whose bound
    /// satisfies `v <= bound`, or into the overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn with_buckets(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Ten exponential buckets from 1 upward (1, 2, 4, … 512) — the
    /// default when a histogram is observed without prior registration.
    #[must_use]
    pub fn exponential_default() -> Self {
        let bounds: Vec<f64> = (0..10).map(|i| f64::from(1u32 << i)).collect();
        Self::with_buckets(&bounds)
    }

    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one: per-bucket counts, sum,
    /// count, min and max all merge. Returns `false` (and changes
    /// nothing) when the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        true
    }

    /// Upper bucket bounds (without the overflow bucket).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min_value(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max_value(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("bounds", self.bounds.to_json()),
            ("counts", self.counts.to_json()),
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            ("min", self.min_value().to_json()),
            ("max", self.max_value().to_json()),
        ])
    }
}

/// A named, labeled collection of counters, gauges, histograms, quantile
/// sketches and windowed time series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
    sketches: BTreeMap<MetricKey, QuantileSketch>,
    series: BTreeMap<MetricKey, TimeSeries>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    // ---- counters ----------------------------------------------------

    /// Adds `v` to the named counter, creating it at zero first.
    pub fn count(&mut self, name: &str, v: u64) {
        self.count_labeled(name, &[], v);
    }

    /// Adds `v` to the counter `(name, labels)`.
    pub fn count_labeled(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0) += v;
    }

    /// Reads an unlabeled counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_labeled(name, &[])
    }

    /// Reads a labeled counter (0 when absent).
    #[must_use]
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    // ---- gauges ------------------------------------------------------

    /// Sets the named gauge to `v`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauge_labeled(name, &[], v);
    }

    /// Sets the gauge `(name, labels)` to `v`.
    pub fn gauge_labeled(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Reads an unlabeled gauge.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauge_value_labeled(name, &[])
    }

    /// Reads a labeled gauge.
    #[must_use]
    pub fn gauge_value_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    // ---- histograms --------------------------------------------------

    /// Registers a histogram with explicit bucket bounds, replacing any
    /// existing histogram of the same name.
    pub fn register_histogram(&mut self, name: &str, bounds: &[f64]) {
        self.register_histogram_labeled(name, &[], bounds);
    }

    /// Registers a labeled histogram with explicit bucket bounds.
    pub fn register_histogram_labeled(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) {
        self.histograms.insert(
            MetricKey::new(name, labels),
            Histogram::with_buckets(bounds),
        );
    }

    /// Records a sample, auto-registering with
    /// [`Histogram::exponential_default`] buckets when the name is new.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.observe_labeled(name, &[], v);
    }

    /// Records a labeled sample, auto-registering default buckets when
    /// the key is new.
    pub fn observe_labeled(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_insert_with(Histogram::exponential_default)
            .observe(v);
    }

    /// Reads an unlabeled histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histogram_labeled(name, &[])
    }

    /// Reads a labeled histogram.
    #[must_use]
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&MetricKey::new(name, labels))
    }

    // ---- quantile sketches -------------------------------------------

    /// Records a sample into the named streaming-quantile sketch,
    /// auto-registering at the default compression when the key is new.
    pub fn record_quantile(&mut self, name: &str, v: f64) {
        self.record_quantile_labeled(name, &[], v);
    }

    /// Records a labeled quantile-sketch sample.
    pub fn record_quantile_labeled(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.sketches
            .entry(MetricKey::new(name, labels))
            .or_default()
            .observe(v);
    }

    /// Reads an unlabeled sketch.
    #[must_use]
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketch_labeled(name, &[])
    }

    /// Reads a labeled sketch.
    #[must_use]
    pub fn sketch_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<&QuantileSketch> {
        self.sketches.get(&MetricKey::new(name, labels))
    }

    // ---- windowed time series ----------------------------------------

    /// Registers a windowed time series with the given bucket width
    /// (cycles) and retained-bucket capacity, replacing any existing
    /// series of the same key.
    pub fn register_series(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bucket_width: u64,
        capacity: usize,
    ) {
        self.series.insert(
            MetricKey::new(name, labels),
            TimeSeries::new(bucket_width, capacity),
        );
    }

    /// Records a sample at `cycle` into the named series,
    /// auto-registering with default geometry when the key is new.
    pub fn series_record(&mut self, name: &str, cycle: u64, v: f64) {
        self.series_record_labeled(name, &[], cycle, v);
    }

    /// Records a labeled series sample at `cycle`.
    pub fn series_record_labeled(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        cycle: u64,
        v: f64,
    ) {
        self.series
            .entry(MetricKey::new(name, labels))
            .or_default()
            .record(cycle, v);
    }

    /// Reads an unlabeled series.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series_labeled(name, &[])
    }

    /// Reads a labeled series.
    #[must_use]
    pub fn series_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<&TimeSeries> {
        self.series.get(&MetricKey::new(name, labels))
    }

    // ---- iteration (exporters) ---------------------------------------

    /// Iterates all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// Iterates all gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.gauges.iter().map(|(k, v)| (k, *v))
    }

    /// Iterates all histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> {
        self.histograms.iter()
    }

    /// Iterates all quantile sketches in key order.
    pub fn sketches(&self) -> impl Iterator<Item = (&MetricKey, &QuantileSketch)> {
        self.sketches.iter()
    }

    /// Iterates all time series in key order.
    pub fn all_series(&self) -> impl Iterator<Item = (&MetricKey, &TimeSeries)> {
        self.series.iter()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.sketches.is_empty()
            && self.series.is_empty()
    }

    // ---- folding -----------------------------------------------------

    /// Folds another registry into this one: counters add, gauges take
    /// the other's value, histograms / sketches / series merge
    /// element-wise. When a histogram collides with different bucket
    /// bounds (or a series with a different bucket width) the existing
    /// entry is kept and the [`ABSORB_CONFLICTS`] counter is bumped —
    /// samples are never silently replaced.
    pub fn absorb(&mut self, other: &Registry) {
        let mut conflicts: u64 = 0;
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            match self.histograms.entry(k.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(v.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    if !slot.get_mut().merge(v) {
                        conflicts += 1;
                    }
                }
            }
        }
        for (k, v) in &other.sketches {
            match self.sketches.entry(k.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(v.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().merge(v);
                }
            }
        }
        for (k, v) in &other.series {
            match self.series.entry(k.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(v.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    if !slot.get_mut().merge(v) {
                        conflicts += 1;
                    }
                }
            }
        }
        if conflicts > 0 {
            self.count(ABSORB_CONFLICTS, conflicts);
        }
    }

    /// Writes the snapshot to a file as pretty-enough compact JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_snapshot(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

fn section<V: ToJson>(map: &BTreeMap<MetricKey, V>) -> JsonValue {
    JsonValue::Object(
        map.iter()
            .map(|(k, v)| (k.canonical(), v.to_json()))
            .collect(),
    )
}

impl ToJson for Registry {
    fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("counters".to_owned(), section(&self.counters)),
            ("gauges".to_owned(), section(&self.gauges)),
            ("histograms".to_owned(), section(&self.histograms)),
        ];
        if !self.sketches.is_empty() {
            pairs.push(("sketches".to_owned(), section(&self.sketches)));
        }
        if !self.series.is_empty() {
            pairs.push(("series".to_owned(), section(&self.series)));
        }
        JsonValue::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.count("sim.dram_bytes", 10);
        r.count("sim.dram_bytes", 5);
        assert_eq!(r.counter("sim.dram_bytes"), 15);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn labeled_counters_are_separate_series() {
        let mut r = Registry::new();
        r.count_labeled("serve.rejected", labels!("class" => "a"), 2);
        r.count_labeled("serve.rejected", labels!("class" => "b"), 3);
        r.count("serve.rejected", 1);
        assert_eq!(
            r.counter_labeled("serve.rejected", labels!("class" => "a")),
            2
        );
        assert_eq!(
            r.counter_labeled("serve.rejected", labels!("class" => "b")),
            3
        );
        assert_eq!(r.counter("serve.rejected"), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut r = Registry::new();
        r.count_labeled("c", labels!("x" => "1", "y" => "2"), 1);
        r.count_labeled("c", labels!("y" => "2", "x" => "1"), 1);
        assert_eq!(r.counter_labeled("c", labels!("x" => "1", "y" => "2")), 2);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.gauge("util", 0.25);
        r.gauge("util", 0.75);
        assert_eq!(r.gauge_value("util"), Some(0.75));
        assert_eq!(r.gauge_value("missing"), None);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let mut h = Histogram::with_buckets(&[1.0, 2.0, 4.0]);
        // Exactly on a bound falls into that bucket (v <= bound).
        h.observe(1.0);
        h.observe(2.0);
        h.observe(4.0);
        assert_eq!(h.counts(), &[1, 1, 1, 0]);
        // Just above a bound falls into the next bucket.
        h.observe(1.0 + f64::EPSILON * 2.0);
        assert_eq!(h.counts(), &[1, 2, 1, 0]);
        // Above the last bound goes to overflow.
        h.observe(4.1);
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        // Below the first bound goes to the first bucket.
        h.observe(-3.0);
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::with_buckets(&[10.0]);
        h.observe(2.0);
        h.observe(6.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 8.0);
        assert_eq!(h.mean(), 4.0);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("min").unwrap().as_f64(), Some(2.0));
        assert_eq!(j.get("max").unwrap().as_f64(), Some(6.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::with_buckets(&[2.0, 1.0]);
    }

    #[test]
    fn observe_auto_registers() {
        let mut r = Registry::new();
        r.observe("lat", 3.0);
        assert_eq!(r.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Registry::new();
        a.count("c", 1);
        let mut b = Registry::new();
        b.count("c", 2);
        b.gauge("g", 9.0);
        a.absorb(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge_value("g"), Some(9.0));
    }

    #[test]
    fn absorb_merges_histograms_instead_of_replacing() {
        let mut a = Registry::new();
        a.register_histogram("lat", &[1.0, 10.0]);
        a.observe("lat", 0.5);
        a.observe("lat", 5.0);
        let mut b = Registry::new();
        b.register_histogram("lat", &[1.0, 10.0]);
        b.observe("lat", 100.0);
        b.observe("lat", 0.25);
        a.absorb(&b);
        let h = a.histogram("lat").expect("merged");
        assert_eq!(h.count(), 4);
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.sum(), 105.75);
        assert_eq!(h.min_value(), Some(0.25));
        assert_eq!(h.max_value(), Some(100.0));
        assert_eq!(a.counter(ABSORB_CONFLICTS), 0);
    }

    #[test]
    fn absorb_counts_bound_conflicts() {
        let mut a = Registry::new();
        a.register_histogram("lat", &[1.0, 10.0]);
        a.observe("lat", 0.5);
        let mut b = Registry::new();
        b.register_histogram("lat", &[2.0, 20.0]);
        b.observe("lat", 0.5);
        a.absorb(&b);
        // The existing histogram is kept untouched and the conflict counted.
        assert_eq!(a.histogram("lat").unwrap().count(), 1);
        assert_eq!(a.histogram("lat").unwrap().bounds(), &[1.0, 10.0]);
        assert_eq!(a.counter(ABSORB_CONFLICTS), 1);
    }

    #[test]
    fn absorb_merges_sketches_and_series() {
        let mut a = Registry::new();
        a.record_quantile("q", 1.0);
        a.series_record("s", 0, 1.0);
        let mut b = Registry::new();
        b.record_quantile("q", 3.0);
        b.series_record("s", 0, 2.0);
        a.absorb(&b);
        assert_eq!(a.sketch("q").unwrap().count(), 2);
        assert_eq!(a.series("s").unwrap().window_count(), 2);
    }

    #[test]
    fn snapshot_json_shape() {
        let mut r = Registry::new();
        r.count("a.b", 7);
        r.gauge("g", 1.5);
        r.register_histogram("h", &[1.0, 2.0]);
        r.observe("h", 1.5);
        let parsed = crate::json::JsonValue::parse(&r.to_json_string()).unwrap();
        assert_eq!(
            parsed.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            parsed.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(1.5)
        );
        let h = parsed.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("counts").unwrap().as_array().unwrap().len(), 3);
        // Sketch/series sections appear only when used.
        assert!(parsed.get("sketches").is_none());
        assert!(parsed.get("series").is_none());
    }

    #[test]
    fn labeled_snapshot_uses_canonical_keys() {
        let mut r = Registry::new();
        r.count_labeled(
            "serve.rejected",
            labels!("prio" => "high", "class" => "a"),
            4,
        );
        r.record_quantile_labeled("lat", labels!("class" => "a"), 2.0);
        let parsed = crate::json::JsonValue::parse(&r.to_json_string()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("serve.rejected{class=\"a\",prio=\"high\"}")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        assert_eq!(
            parsed
                .get("sketches")
                .unwrap()
                .get("lat{class=\"a\"}")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
}
