//! A metrics registry: named counters, gauges and fixed-bucket
//! histograms, exported as a JSON snapshot.
//!
//! The registry is the accounting side of the observability layer: the
//! simulator and the functional executors fold their per-layer numbers
//! (DRAM/SRAM bytes, stall cycles, MAC windows, early-termination savings,
//! tile folds) into it, and experiment binaries dump one snapshot per run
//! as a before/after artifact for performance work.

use crate::json::{JsonValue, ToJson};
use std::collections::BTreeMap;

/// A fixed-bucket histogram with an implicit overflow (`+Inf`) bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given upper bucket bounds
    /// (inclusive). A sample `v` falls into the first bucket whose bound
    /// satisfies `v <= bound`, or into the overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn with_buckets(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Ten exponential buckets from 1 upward (1, 2, 4, … 512) — the
    /// default when a histogram is observed without prior registration.
    #[must_use]
    pub fn exponential_default() -> Self {
        let bounds: Vec<f64> = (0..10).map(|i| f64::from(1u32 << i)).collect();
        Self::with_buckets(&bounds)
    }

    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Upper bucket bounds (without the overflow bucket).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("bounds", self.bounds.to_json()),
            ("counts", self.counts.to_json()),
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            (
                "min",
                if self.count == 0 {
                    JsonValue::Null
                } else {
                    self.min.to_json()
                },
            ),
            (
                "max",
                if self.count == 0 {
                    JsonValue::Null
                } else {
                    self.max.to_json()
                },
            ),
        ])
    }
}

/// A named collection of counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the named counter, creating it at zero first.
    pub fn count(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    /// Reads a counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `v`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Reads a gauge.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Registers a histogram with explicit bucket bounds, replacing any
    /// existing histogram of the same name.
    pub fn register_histogram(&mut self, name: &str, bounds: &[f64]) {
        self.histograms
            .insert(name.to_owned(), Histogram::with_buckets(bounds));
    }

    /// Records a sample, auto-registering with
    /// [`Histogram::exponential_default`] buckets when the name is new.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::exponential_default)
            .observe(v);
    }

    /// Reads a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value, histograms are replaced when names collide.
    pub fn absorb(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.insert(k.clone(), v.clone());
        }
    }

    /// Writes the snapshot to a file as pretty-enough compact JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_snapshot(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "counters",
                JsonValue::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "gauges",
                JsonValue::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "histograms",
                JsonValue::Object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.count("sim.dram_bytes", 10);
        r.count("sim.dram_bytes", 5);
        assert_eq!(r.counter("sim.dram_bytes"), 15);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.gauge("util", 0.25);
        r.gauge("util", 0.75);
        assert_eq!(r.gauge_value("util"), Some(0.75));
        assert_eq!(r.gauge_value("missing"), None);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let mut h = Histogram::with_buckets(&[1.0, 2.0, 4.0]);
        // Exactly on a bound falls into that bucket (v <= bound).
        h.observe(1.0);
        h.observe(2.0);
        h.observe(4.0);
        assert_eq!(h.counts(), &[1, 1, 1, 0]);
        // Just above a bound falls into the next bucket.
        h.observe(1.0 + f64::EPSILON * 2.0);
        assert_eq!(h.counts(), &[1, 2, 1, 0]);
        // Above the last bound goes to overflow.
        h.observe(4.1);
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        // Below the first bound goes to the first bucket.
        h.observe(-3.0);
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::with_buckets(&[10.0]);
        h.observe(2.0);
        h.observe(6.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 8.0);
        assert_eq!(h.mean(), 4.0);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("min").unwrap().as_f64(), Some(2.0));
        assert_eq!(j.get("max").unwrap().as_f64(), Some(6.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::with_buckets(&[2.0, 1.0]);
    }

    #[test]
    fn observe_auto_registers() {
        let mut r = Registry::new();
        r.observe("lat", 3.0);
        assert_eq!(r.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Registry::new();
        a.count("c", 1);
        let mut b = Registry::new();
        b.count("c", 2);
        b.gauge("g", 9.0);
        a.absorb(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge_value("g"), Some(9.0));
    }

    #[test]
    fn snapshot_json_shape() {
        let mut r = Registry::new();
        r.count("a.b", 7);
        r.gauge("g", 1.5);
        r.register_histogram("h", &[1.0, 2.0]);
        r.observe("h", 1.5);
        let parsed = crate::json::JsonValue::parse(&r.to_json_string()).unwrap();
        assert_eq!(
            parsed.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            parsed.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(1.5)
        );
        let h = parsed.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("counts").unwrap().as_array().unwrap().len(), 3);
    }
}
