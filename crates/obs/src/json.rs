//! A hand-rolled JSON value model, writer and parser.
//!
//! The workspace must build with **zero external dependencies** (the
//! experiment machines have no registry access), so instead of serde this
//! module provides:
//!
//! * [`JsonValue`] — an owned JSON tree with a compact renderer that
//!   escapes strings per RFC 8259 and maps non-finite floats to `null`;
//! * [`ToJson`] — the trait every experiment-facing record implements in
//!   place of `serde::Serialize`;
//! * [`JsonValue::parse`] — a small recursive-descent parser used by the
//!   test suite to validate exported traces and snapshots.
//!
//! The renderer is deterministic: object keys keep insertion order, so
//! golden-file tests are stable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An owned JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (rendered without a fraction).
    Int(i64),
    /// An unsigned integer (rendered without a fraction).
    UInt(u64),
    /// A double. NaN and infinities render as `null` (JSON has no
    /// representation for them).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object from key/value pairs.
    #[must_use]
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up a key in an object node.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as an `f64` if it is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Int(v) => Some(v as f64),
            JsonValue::UInt(v) => Some(v as f64),
            JsonValue::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The node as a `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(v) => Some(v),
            JsonValue::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The node as a `bool` if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The node as a string slice if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The node as an array slice if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the tree to a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => render_f64(*v, out),
            JsonValue::Str(s) => render_str(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn render_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1.0e15 {
        // Keep integral floats readable and round-trippable.
        let _ = write!(out, "{:.1}", v);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not produced by the writer;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-sync to a char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("bad float"))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(JsonValue::Int(v))
        } else {
            text.parse::<u64>()
                .map(JsonValue::UInt)
                .map_err(|_| self.err("bad integer"))
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Conversion to a [`JsonValue`] — the workspace's stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    /// Builds the JSON tree for this value.
    fn to_json(&self) -> JsonValue;

    /// Renders straight to a compact JSON string.
    fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str((*self).to_owned())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::$variant(*self as $cast)
            }
        }
    )*};
}

impl_tojson_int!(
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64,
    isize => Int as i64,
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
    usize => UInt as u64
);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::Int(-7).render(), "-7");
        assert_eq!(JsonValue::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(JsonValue::Float(1.5).render(), "1.5");
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::object(vec![
            (
                "xs",
                JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
            ("name", JsonValue::Str("edge".into())),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"edge"}"#);
    }

    #[test]
    fn parse_round_trips_render() {
        let v = JsonValue::object(vec![
            ("a", JsonValue::Float(0.125)),
            (
                "b",
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(false)]),
            ),
            ("c", JsonValue::Str("π ≤ \"4\"".into())),
            ("d", JsonValue::Int(-3)),
        ]);
        let text = v.render();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let v = JsonValue::parse(" { \"k\" : [ 1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_array().unwrap()[1].as_str(),
            Some("A")
        );
    }

    #[test]
    fn accessors() {
        let v = JsonValue::object(vec![("n", JsonValue::UInt(9))]);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(9));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(9.0));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Int(5).as_u64(), Some(5));
        assert_eq!(JsonValue::Int(-5).as_u64(), None);
    }

    #[test]
    fn tojson_blanket_impls() {
        assert_eq!(42u32.to_json_string(), "42");
        assert_eq!((-1i8).to_json_string(), "-1");
        assert_eq!(Some(3u64).to_json_string(), "3");
        assert_eq!(None::<u64>.to_json_string(), "null");
        assert_eq!(vec![1u8, 2].to_json_string(), "[1,2]");
        assert_eq!("hi".to_json_string(), "\"hi\"");
    }
}
