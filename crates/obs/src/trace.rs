//! A span/event tracer with a bounded ring buffer and Chrome
//! `trace_event` / JSONL exporters.
//!
//! Events carry explicit timestamps so that both time bases of the
//! workspace fit in one trace:
//!
//! * **wall time** — functional execution ([`GemmExecutor`]-level spans)
//!   stamps events with [`Tracer::now_us`], microseconds since the tracer
//!   was created;
//! * **simulated cycles** — the timing simulator is analytic (it never
//!   steps a clock), so its per-layer spans advance a virtual cycle
//!   cursor and record one cycle as one microsecond-unit tick.
//!
//! The two bases are kept apart by process-id lanes ([`PID_WALL`] and
//! [`PID_SIM`]) so `chrome://tracing` / Perfetto renders them as separate
//! tracks. The buffer is bounded: when full, the oldest events are
//! dropped and counted, never reallocated — tracing a long network sweep
//! cannot exhaust memory.
//!
//! [`GemmExecutor`]: ../usystolic_core/struct.GemmExecutor.html

use crate::json::{JsonValue, ToJson};
use std::collections::VecDeque;
use std::time::Instant;

/// Trace lane for wall-clock (host execution) events.
pub const PID_WALL: u32 = 1;
/// Trace lane for simulated-cycle (timing model) events.
pub const PID_SIM: u32 = 2;

/// The Chrome `trace_event` phases the tracer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `"X"` — a complete span with a duration.
    Complete,
    /// `"i"` — an instant event.
    Instant,
    /// `"C"` — a counter sample.
    Counter,
}

impl Phase {
    /// The single-character phase code of the trace_event format.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }
}

/// One trace event, aligned with the Chrome `trace_event` JSON schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (`name`).
    pub name: String,
    /// Category (`cat`), used by trace viewers to filter.
    pub cat: &'static str,
    /// Phase (`ph`).
    pub ph: Phase,
    /// Timestamp in microsecond units (`ts`).
    pub ts: f64,
    /// Duration in microsecond units (`dur`, complete spans only).
    pub dur: f64,
    /// Process-id lane (`pid`): [`PID_WALL`] or [`PID_SIM`].
    pub pid: u32,
    /// Thread-id lane (`tid`).
    pub tid: u32,
    /// Free-form arguments (`args`).
    pub args: Vec<(String, JsonValue)>,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("name".to_owned(), JsonValue::Str(self.name.clone())),
            ("cat".to_owned(), JsonValue::Str(self.cat.to_owned())),
            ("ph".to_owned(), JsonValue::Str(self.ph.code().to_owned())),
            ("ts".to_owned(), JsonValue::Float(self.ts)),
            ("pid".to_owned(), JsonValue::UInt(u64::from(self.pid))),
            ("tid".to_owned(), JsonValue::UInt(u64::from(self.tid))),
        ];
        if self.ph == Phase::Complete {
            pairs.insert(4, ("dur".to_owned(), JsonValue::Float(self.dur)));
        }
        if !self.args.is_empty() {
            pairs.push(("args".to_owned(), JsonValue::Object(self.args.clone())));
        }
        JsonValue::Object(pairs)
    }
}

/// A bounded-ring-buffer tracer.
#[derive(Debug)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    epoch: Instant,
}

/// Default event capacity: enough for a full AlexNet sweep with per-tile
/// spans while staying well under 100 MB.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

impl Default for Tracer {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Self {
            events: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
            capacity,
            dropped: 0,
            epoch: Instant::now(),
        }
    }

    /// Microseconds of wall time since the tracer was created.
    #[must_use]
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1.0e6
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Records a complete span (`ph: "X"`).
    #[allow(clippy::too_many_arguments)] // mirrors the trace_event field list
    pub fn complete(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u32,
        ts: f64,
        dur: f64,
        args: Vec<(String, JsonValue)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Complete,
            ts,
            dur,
            pid,
            tid,
            args,
        });
    }

    /// Records an instant event (`ph: "i"`).
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u32,
        ts: f64,
        args: Vec<(String, JsonValue)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Instant,
            ts,
            dur: 0.0,
            pid,
            tid,
            args,
        });
    }

    /// Records a counter sample (`ph: "C"`): trace viewers plot these as a
    /// stacked time series.
    pub fn counter(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        ts: f64,
        value: f64,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Counter,
            ts,
            dur: 0.0,
            pid,
            tid: 0,
            args: vec![("value".to_owned(), JsonValue::Float(value))],
        });
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the ring buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates the buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Exports the buffer as a Chrome `trace_event` JSON object —
    /// loadable in `chrome://tracing` and Perfetto.
    #[must_use]
    pub fn export_chrome(&self) -> String {
        let events: Vec<JsonValue> = self.events.iter().map(ToJson::to_json).collect();
        JsonValue::object(vec![
            ("traceEvents", JsonValue::Array(events)),
            ("displayTimeUnit", JsonValue::Str("ms".to_owned())),
            (
                "otherData",
                JsonValue::object(vec![
                    ("producer", JsonValue::Str("usystolic-obs".to_owned())),
                    ("droppedEvents", JsonValue::UInt(self.dropped)),
                ]),
            ),
        ])
        .render()
    }

    /// Exports the buffer as JSON Lines: a header object on the first
    /// line (producer, buffered-event count and — crucially — how many
    /// events the bounded ring dropped), then one event object per line,
    /// suitable for `jq`/spreadsheet post-processing.
    #[must_use]
    pub fn export_jsonl(&self) -> String {
        let mut out = JsonValue::object(vec![
            ("producer", JsonValue::Str("usystolic-obs".to_owned())),
            ("events", JsonValue::UInt(self.events.len() as u64)),
            ("droppedEvents", JsonValue::UInt(self.dropped)),
        ])
        .render();
        out.push('\n');
        for ev in &self.events {
            out.push_str(&ev.to_json_string());
            out.push('\n');
        }
        out
    }

    /// Writes the Chrome trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.export_chrome())
    }

    /// Writes the JSONL trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.export_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(t: &mut Tracer, name: &str, ts: f64) {
        t.complete(name, "test", PID_SIM, 0, ts, 1.0, vec![]);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = Tracer::new(3);
        for i in 0..5 {
            span(&mut t, &format!("e{i}"), i as f64);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let names: Vec<&str> = t.events().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
    }

    #[test]
    fn chrome_export_is_valid_json_with_required_keys() {
        let mut t = Tracer::new(16);
        t.complete(
            "layer",
            "sim",
            PID_SIM,
            0,
            0.0,
            42.0,
            vec![("macs".to_owned(), JsonValue::UInt(100))],
        );
        t.instant("start", "sim", PID_SIM, 0, 0.0, vec![]);
        t.counter("dram_bw", "sim", PID_SIM, 1.0, 0.25);
        let parsed = JsonValue::parse(&t.export_chrome()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 3);
        let complete = &events[0];
        assert_eq!(complete.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(complete.get("dur").unwrap().as_f64(), Some(42.0));
        assert_eq!(
            complete.get("pid").unwrap().as_u64(),
            Some(u64::from(PID_SIM))
        );
        assert_eq!(
            complete.get("args").unwrap().get("macs").unwrap().as_u64(),
            Some(100)
        );
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(events[2].get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            events[2]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(0.25)
        );
    }

    #[test]
    fn jsonl_export_is_header_plus_one_object_per_line() {
        let mut t = Tracer::new(8);
        span(&mut t, "a", 0.0);
        span(&mut t, "b", 1.0);
        let text = t.export_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = JsonValue::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("producer").unwrap().as_str(),
            Some("usystolic-obs")
        );
        assert_eq!(header.get("events").unwrap().as_u64(), Some(2));
        assert_eq!(header.get("droppedEvents").unwrap().as_u64(), Some(0));
        for line in &lines[1..] {
            let v = JsonValue::parse(line).unwrap();
            assert!(v.get("name").is_some());
            assert!(v.get("ts").is_some());
        }
    }

    #[test]
    fn jsonl_header_carries_drop_count() {
        let mut t = Tracer::new(2);
        for i in 0..5 {
            span(&mut t, &format!("e{i}"), i as f64);
        }
        let text = t.export_jsonl();
        let header = JsonValue::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("droppedEvents").unwrap().as_u64(), Some(3));
        assert_eq!(header.get("events").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn now_us_is_monotonic() {
        let t = Tracer::new(4);
        let a = t.now_us();
        let b = t.now_us();
        assert!(b >= a);
    }

    #[test]
    fn instant_has_no_dur_key() {
        let mut t = Tracer::new(4);
        t.instant("i", "c", PID_WALL, 0, 0.0, vec![]);
        let j = t.events().next().unwrap().to_json();
        assert!(j.get("dur").is_none());
    }
}
