//! Pins the "observability off = free" contract: with no session
//! installed, instrumentation helpers perform **zero heap allocations**.
//!
//! A counting global allocator records every allocation on the process;
//! the disabled path (`obs::with`, `obs::count`, …) must not touch it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// Measures `f` up to five times and returns the *minimum* allocation
/// count. The counter is process-global, so a concurrently starting
/// harness thread (stdout capture buffers, thread spawn) can leak its
/// allocations into one measured region; it cannot *remove* any, so a
/// single zero observation proves the disabled path allocation-free.
fn min_allocations_during<F: FnMut()>(mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..5 {
        best = best.min(allocations_during(&mut f));
        if best == 0 {
            break;
        }
    }
    best
}

/// The allocation counter is process-global, so tests in this file must
/// not run concurrently: a test that legitimately allocates (or the
/// harness itself) would be charged to another test's measured region.
/// Poison is ignored — the guard protects no data, only ordering, and a
/// panicked neighbour must not cascade into the other tests.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn disabled_instrumentation_does_not_allocate() {
    let _guard = serial_guard();
    assert!(
        usystolic_obs::take().is_none(),
        "test requires no installed session"
    );

    // Touch the thread-local once so lazy TLS initialisation is not
    // charged to the measured region.
    usystolic_obs::count("warmup", 1);

    let allocs = min_allocations_during(|| {
        for i in 0..10_000u64 {
            usystolic_obs::count("sim.dram_bytes", i);
            usystolic_obs::gauge("sim.utilization", 0.5);
            usystolic_obs::observe("core.tile_cycles", i as f64);
            usystolic_obs::with(|o| {
                // Never runs: no session installed.
                o.metrics.count("unreachable", 1);
            });
        }
    });
    assert_eq!(
        allocs, 0,
        "disabled observability path allocated {allocs} times"
    );
}

/// The dimensional sites added for fleet telemetry — labeled counters/
/// gauges/histograms, streaming sketches, windowed series and the
/// request-correlation setters — stay allocation-free when disabled:
/// labels are borrowed `&[(&str, &str)]` slices, so no call below may
/// build a `String` or box anything before the session check.
#[test]
fn disabled_labeled_and_sketch_sites_do_not_allocate() {
    let _guard = serial_guard();
    assert!(
        usystolic_obs::take().is_none(),
        "test requires no installed session"
    );
    usystolic_obs::count("warmup", 1);

    let allocs = min_allocations_during(|| {
        for i in 0..10_000u64 {
            usystolic_obs::count_labeled(
                "serve.rejected",
                &[("class", "m"), ("priority", "high")],
                1,
            );
            usystolic_obs::gauge_labeled("sim.scaling_efficiency", &[("instances", "4")], 0.9);
            usystolic_obs::observe_labeled("core.tile_us", &[("kernel", "packed")], i as f64);
            usystolic_obs::record_quantile("serve.latency_cycles", i as f64);
            usystolic_obs::record_quantile_labeled("serve.latency_cycles", &[("class", "m")], 1.0);
            usystolic_obs::series_record("serve.arrivals", i, 1.0);
            usystolic_obs::series_record_labeled("serve.arrivals", &[("class", "m")], i, 1.0);
            usystolic_obs::set_request_id(Some(i));
            usystolic_obs::set_shard_id(Some(1));
        }
    });
    assert_eq!(
        allocs, 0,
        "disabled labeled/sketch/series path allocated {allocs} times"
    );
}

#[test]
fn enabled_instrumentation_records() {
    let _guard = serial_guard();
    usystolic_obs::install(usystolic_obs::Session::new());
    usystolic_obs::count("k", 2);
    let s = usystolic_obs::take().expect("installed above");
    assert_eq!(s.metrics.counter("k"), 2);
}
