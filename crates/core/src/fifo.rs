//! The synchronisation FIFOs surrounding the array (Fig. 7: "The
//! surrounding FIFOs are in charge of synchronizing data as in \[30\]").
//!
//! A weight-stationary array consumes its input vectors *skewed*: row `k`
//! of a vector must arrive `k` cycles after row 0 (or in reverse order
//! when partial sums cascade upward), and the outputs emerge with the
//! mirror skew. [`DelayLine`] is the unit FIFO; [`SkewBank`] arranges one
//! per row/column with staircase depths.

use std::collections::VecDeque;

/// A fixed-latency FIFO: elements emerge exactly `depth` pushes later.
///
/// A `depth` of 0 is a wire.
///
/// # Example
///
/// ```
/// use usystolic_core::fifo::DelayLine;
///
/// let mut line = DelayLine::new(2, 0i64);
/// assert_eq!(line.push(7), 0); // fill value emerges first
/// assert_eq!(line.push(8), 0);
/// assert_eq!(line.push(9), 7);
/// ```
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    queue: VecDeque<T>,
    depth: usize,
}

impl<T: Clone> DelayLine<T> {
    /// Creates a delay line of the given depth, pre-filled with `fill`.
    #[must_use]
    pub fn new(depth: usize, fill: T) -> Self {
        Self {
            queue: VecDeque::from(vec![fill; depth]),
            depth,
        }
    }

    /// Pushes one element and pops the element that has aged `depth`
    /// cycles (the pushed element itself when depth is 0).
    pub fn push(&mut self, value: T) -> T {
        if self.depth == 0 {
            return value;
        }
        // The queue is constructed with `depth` elements and push/pop stay
        // paired, so pop_front always yields; falling back to the pushed
        // value keeps the degenerate case total without panicking.
        let out = self.queue.pop_front().unwrap_or_else(|| value.clone());
        self.queue.push_back(value);
        out
    }

    /// The configured latency.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of elements currently buffered (always equals the depth).
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the line buffers nothing (depth 0).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// The direction of the staircase skew across a bank of FIFOs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkewOrder {
    /// Lane 0 has depth 0, lane `i` has depth `i` (top-first injection).
    Ascending,
    /// Lane `n-1` has depth 0, lane `i` has depth `n-1-i` (bottom-first
    /// injection — the order that makes partial sums cascade upward).
    Descending,
}

/// A bank of [`DelayLine`]s with staircase depths, skewing a parallel
/// vector into the diagonal wavefront a systolic array consumes.
#[derive(Debug, Clone)]
pub struct SkewBank<T> {
    lanes: Vec<DelayLine<T>>,
}

impl<T: Clone> SkewBank<T> {
    /// Creates a bank of `lanes` FIFOs in the given skew order, pre-filled
    /// with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn new(lanes: usize, order: SkewOrder, fill: T) -> Self {
        assert!(lanes > 0, "a skew bank needs at least one lane");
        let lanes = (0..lanes)
            .map(|i| {
                let depth = match order {
                    SkewOrder::Ascending => i,
                    SkewOrder::Descending => lanes - 1 - i,
                };
                DelayLine::new(depth, fill.clone())
            })
            .collect();
        Self { lanes }
    }

    /// Pushes one parallel vector and returns the skewed wavefront that
    /// emerges this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the lane count.
    pub fn push(&mut self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.lanes.len(), "lane count mismatch");
        self.lanes
            .iter_mut()
            .zip(values)
            .map(|(lane, v)| lane.push(v.clone()))
            .collect()
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Cycles needed to fully drain the deepest lane.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.lanes.iter().map(DelayLine::depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_depth_is_a_wire() {
        let mut line = DelayLine::new(0, 0u8);
        assert_eq!(line.push(5), 5);
        assert!(line.is_empty());
        assert_eq!(line.len(), 0);
    }

    #[test]
    fn delay_line_has_exact_latency() {
        let mut line = DelayLine::new(3, -1i32);
        let outs: Vec<i32> = (0..6).map(|v| line.push(v)).collect();
        assert_eq!(outs, [-1, -1, -1, 0, 1, 2]);
        assert_eq!(line.depth(), 3);
        assert_eq!(line.len(), 3);
    }

    #[test]
    fn ascending_skew_staircases() {
        let mut bank = SkewBank::new(3, SkewOrder::Ascending, 0i32);
        // Push the same vector three times; lane i echoes it i cycles
        // later.
        let w0 = bank.push(&[1, 2, 3]);
        let w1 = bank.push(&[4, 5, 6]);
        let w2 = bank.push(&[7, 8, 9]);
        assert_eq!(w0, [1, 0, 0]);
        assert_eq!(w1, [4, 2, 0]);
        assert_eq!(w2, [7, 5, 3]);
        assert_eq!(bank.max_depth(), 2);
    }

    #[test]
    fn descending_skew_mirrors() {
        let mut bank = SkewBank::new(3, SkewOrder::Descending, 0i32);
        let w0 = bank.push(&[1, 2, 3]);
        let w1 = bank.push(&[4, 5, 6]);
        assert_eq!(w0, [0, 0, 3]);
        assert_eq!(w1, [0, 2, 6]);
    }

    #[test]
    fn skew_then_unskew_is_identity() {
        // An ascending bank followed by a descending bank realigns the
        // wavefront (total latency = lanes - 1 per element).
        let lanes = 4;
        let mut skew = SkewBank::new(lanes, SkewOrder::Ascending, 0i32);
        let mut unskew = SkewBank::new(lanes, SkewOrder::Descending, 0i32);
        let vectors: Vec<Vec<i32>> = (0..8)
            .map(|p| (0..lanes as i32).map(|l| p * 10 + l).collect())
            .collect();
        let mut outs = Vec::new();
        for v in &vectors {
            outs.push(unskew.push(&skew.push(v)));
        }
        // Flush with zeros.
        for _ in 0..(lanes - 1) {
            outs.push(unskew.push(&skew.push(&vec![0; lanes])));
        }
        // Output p emerges at cycle p + lanes - 1, realigned.
        for (p, v) in vectors.iter().enumerate() {
            assert_eq!(&outs[p + lanes - 1], v, "vector {p}");
        }
    }

    #[test]
    #[should_panic(expected = "lane count mismatch")]
    fn mismatched_vector_panics() {
        let mut bank = SkewBank::new(2, SkewOrder::Ascending, 0u8);
        let _ = bank.push(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_bank_rejected() {
        let _ = SkewBank::<u8>::new(0, SkewOrder::Ascending, 0);
    }
}
