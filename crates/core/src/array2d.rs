//! A fully cycle-accurate `R × C` array machine.
//!
//! Where [`crate::array`] exploits the Eq. 3 equivalence to evaluate each
//! row's MAC window in one shot, this module steps the whole array cycle
//! by cycle exactly as Fig. 7 describes it:
//!
//! * `R'` weight-preload cycles per tile;
//! * input vectors injected bottom-row-first through the staircase skew
//!   (the surrounding FIFOs), one new vector per MAC interval;
//! * per row, the leftmost PE generates the (IFM-bit, random-number) pair
//!   each multiply cycle and the pair travels right through the IDFF/RREG
//!   chain — one column per cycle;
//! * at the M-end cycle every PE folds in the partial sum its lower
//!   neighbour published on the previous cycle, and the top row streams
//!   the finished OFM through the early-termination shifters.
//!
//! `tests::matches_fast_executor_*` prove bit-exact equivalence with the
//! analytic executors for every computing scheme, and
//! `tests::cycle_count_matches_timing_model` cross-validates the measured
//! cycle count against the `usystolic-sim` ideal-cycle formula.

use crate::config::SystolicConfig;
use crate::kernel::{
    ClosedFormTileKernel, KernelMode, KernelPath, PackedHybridTileKernel, PackedTileKernel,
};
use crate::mapping::TileMapping;
use crate::pe::IfmSource;
use crate::scheme::ComputingScheme;
use crate::CoreError;
use usystolic_gemm::{GemmConfig, Matrix};
use usystolic_unary::add::BinaryAccumulator;
use usystolic_unary::coding::Coding;
use usystolic_unary::rng::{NumberSource, SobolSource};
use usystolic_unary::sign::SignMagnitude;

/// Statistics of a cycle-accurate run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Total clock cycles summed over all tiles.
    pub cycles: u64,
    /// PE-cycles spent inside MAC windows.
    pub busy_pe_cycles: u64,
    /// Weight tiles executed.
    pub tiles: u64,
    /// OREG saturation events.
    pub saturation_events: u64,
}

/// Per-row bitstream generation state.
enum RowGen {
    /// uSystolic: C-I comparator source + conditional weight RNG.
    Unary {
        ifm_src: IfmSource,
        w_rng: SobolSource,
        ifm: SignMagnitude,
        last_r: u64,
    },
    /// uGEMM-H: bipolar input source + ones/zeros-phase RNG pair.
    Bipolar {
        in_src: SobolSource,
        rng_ones: SobolSource,
        rng_zeros: SobolSource,
        in_threshold: u64,
    },
    /// Binary schemes: exact arithmetic, no bitstreams.
    Binary,
}

impl RowGen {
    /// The (enable/input bit, random number) pair for one multiply cycle.
    fn gen_pair(&mut self) -> (bool, u64) {
        match self {
            RowGen::Unary {
                ifm_src,
                w_rng,
                ifm,
                last_r,
            } => {
                let e = ifm_src.next() < ifm.magnitude;
                if e {
                    *last_r = w_rng.next();
                }
                (e, *last_r)
            }
            RowGen::Bipolar {
                in_src,
                rng_ones,
                rng_zeros,
                in_threshold,
            } => {
                let in_bit = in_src.next() < *in_threshold;
                let r = if in_bit {
                    rng_ones.next()
                } else {
                    rng_zeros.next()
                };
                (in_bit, r)
            }
            RowGen::Binary => (false, 0),
        }
    }
}

/// Runs a lowered GEMM (`input: M × K`, `weights: K × N`) through the
/// cycle-accurate machine.
///
/// Functionally identical to [`crate::exec::GemmExecutor::execute_lowered`]
/// for every scheme (verified by test), but also yields the measured
/// cycle counts.
///
/// # Errors
///
/// Returns [`CoreError::Shape`] for mismatched matrices.
pub fn cycle_accurate_gemm(
    config: &SystolicConfig,
    gemm: &GemmConfig,
    input: &Matrix<i64>,
    weights: &Matrix<i64>,
) -> Result<(Matrix<i64>, CycleStats), CoreError> {
    cycle_accurate_gemm_with(config, gemm, input, weights, KernelMode::Auto, 1)
}

/// [`cycle_accurate_gemm`] with an explicit kernel mode and worker count.
///
/// The weight-tile sweep is embarrassingly parallel (tiles share no
/// machine state, only the output accumulation), so tiles are dispatched
/// across `workers` threads of the shared work-stealing pool
/// ([`usystolic_pool`]) and the per-tile partial results are folded
/// sequentially in the canonical `(col_fold, row_fold)` order — the
/// result is **bit-for-bit identical for every worker count and for every
/// [`KernelMode`]** (`tests::packed_kernel_and_workers_are_bit_exact`).
///
/// Under [`KernelMode::Auto`] / [`KernelMode::Packed`], each tile is
/// evaluated by the fastest path [`KernelMode::resolve`] grants the
/// configuration: closed-form window arithmetic for temporal coding,
/// the word-packed popcount kernel (64 multiply cycles per `u64` word,
/// see [`crate::kernel`]) for rate coding and uGEMM-H, and the
/// bit-serial reference for the binary baselines (and for uGEMM-H OREGs
/// narrower than `bitwidth + 2`, where mid-window clamping is real
/// behaviour the lump add cannot reproduce).
///
/// # Errors
///
/// Returns [`CoreError::Shape`] for mismatched matrices and
/// [`CoreError::Config`] if the worker pool fails.
pub fn cycle_accurate_gemm_with(
    config: &SystolicConfig,
    gemm: &GemmConfig,
    input: &Matrix<i64>,
    weights: &Matrix<i64>,
    mode: KernelMode,
    workers: usize,
) -> Result<(Matrix<i64>, CycleStats), CoreError> {
    let (k, n) = gemm.lowered_shape();
    let m = gemm.output_pixels();
    if input.rows() != m || input.cols() != k || weights.rows() != k || weights.cols() != n {
        return Err(CoreError::Shape(format!(
            "lowered shapes must be ({m}x{k})·({k}x{n}), got ({}x{})·({}x{})",
            input.rows(),
            input.cols(),
            weights.rows(),
            weights.cols()
        )));
    }

    let map = TileMapping::new(gemm, config.rows(), config.cols());
    // Resolve the dispatch table once per GEMM (not per tile), so a
    // demoted request records exactly one fallback event.
    let path = mode.resolve(config);
    let kernel_label = match path {
        KernelPath::ClosedForm => "closed-form",
        KernelPath::Packed => "packed",
        KernelPath::Serial => "serial",
    };
    let tiles: Vec<(usize, usize)> = (0..map.col_folds())
        .flat_map(|cf| (0..map.row_folds()).map(move |rf| (cf, rf)))
        .collect();

    let mut sweep_t0 = 0.0;
    usystolic_obs::with(|o| sweep_t0 = o.tracer.now_us());

    // Per-tile partials in parallel. The per-tile spans inside the closure
    // are recorded only on the inline (single-worker) path: worker threads
    // carry no thread-local observability session, so the calls no-op
    // there and the sweep-level span below covers the parallel case.
    let partials = usystolic_pool::run_indexed(workers, tiles.len(), |i| {
        let (cf, rf) = tiles[i];
        let mut tile_out = Matrix::<i64>::zeros(m, n);
        let mut tile_stats = CycleStats::default();
        let mut t0 = 0.0;
        usystolic_obs::with(|o| t0 = o.tracer.now_us());
        let tile = TileMachine::new(config, input, weights, &map, rf, cf);
        let (rows, cols) = (tile.rows, tile.cols);
        match path {
            KernelPath::Serial => tile.run(&mut tile_out, &mut tile_stats),
            KernelPath::ClosedForm => tile.run_closed(&mut tile_out, &mut tile_stats),
            KernelPath::Packed => {
                if config.scheme() == ComputingScheme::UGemmHybrid {
                    tile.run_packed_hybrid(&mut tile_out, &mut tile_stats);
                } else {
                    tile.run_packed(&mut tile_out, &mut tile_stats);
                }
            }
        }
        crate::array::record_tile(
            match path {
                KernelPath::ClosedForm => "cycle_gemm.closed_form",
                KernelPath::Packed => "cycle_gemm.packed",
                KernelPath::Serial => "cycle_gemm.serial",
            },
            cf,
            rf,
            rows,
            cols,
            t0,
        );
        (tile_out, tile_stats)
    })
    .map_err(|e| CoreError::Config(format!("tile sweep worker pool failed: {e}")))?;

    // Deterministic sequential fold in tile order: parallelism changes
    // wall-clock time, never one output bit.
    let mut out = Matrix::<i64>::zeros(m, n);
    let mut stats = CycleStats::default();
    for (tile_out, tile_stats) in partials {
        for (dst, src) in out.as_mut_slice().iter_mut().zip(tile_out.as_slice()) {
            *dst += *src;
        }
        stats.cycles += tile_stats.cycles;
        stats.busy_pe_cycles += tile_stats.busy_pe_cycles;
        stats.tiles += tile_stats.tiles;
        stats.saturation_events += tile_stats.saturation_events;
    }

    // Top-row shifters: rescale the early-terminated partial sums once,
    // after all folds have been accumulated (linear, so order-free).
    let shift = config.early_termination().shift();
    if shift > 0 && config.scheme() == ComputingScheme::UnaryRate {
        for v in out.as_mut_slice() {
            *v <<= shift;
        }
    }

    usystolic_obs::with(|o| {
        use usystolic_obs::ToJson;
        let t1 = o.tracer.now_us();
        o.metrics.count(
            match path {
                KernelPath::Serial => "core.cycle.serial_pe_cycles",
                // The closed form models the same packed schedule; both
                // count as off-reference-machine PE cycles.
                KernelPath::Packed | KernelPath::ClosedForm => "core.cycle.packed_pe_cycles",
            },
            stats.busy_pe_cycles,
        );
        o.metrics.count("core.cycle.tiles", stats.tiles);
        o.metrics
            .count_labeled("core.cycle.tiles", &[("kernel", kernel_label)], stats.tiles);
        let args = o.correlated_args(vec![
            (
                "kernel".to_owned(),
                usystolic_obs::JsonValue::Str(kernel_label.to_owned()),
            ),
            (
                "packed".to_owned(),
                u64::from(path != KernelPath::Serial).to_json(),
            ),
            ("workers".to_owned(), (workers.max(1) as u64).to_json()),
            ("tiles".to_owned(), stats.tiles.to_json()),
        ]);
        o.tracer.complete(
            format!("cycle_gemm sweep {mode}"),
            "core",
            usystolic_obs::PID_WALL,
            0,
            sweep_t0,
            t1 - sweep_t0,
            args,
        );
    });
    Ok((out, stats))
}

/// One weight tile stepping cycle by cycle.
struct TileMachine<'a> {
    config: &'a SystolicConfig,
    input: &'a Matrix<i64>,
    weights: &'a Matrix<i64>,
    k0: usize,
    n0: usize,
    rows: usize,
    cols: usize,
    m: usize,
}

impl<'a> TileMachine<'a> {
    fn new(
        config: &'a SystolicConfig,
        input: &'a Matrix<i64>,
        weights: &'a Matrix<i64>,
        map: &TileMapping,
        rf: usize,
        cf: usize,
    ) -> Self {
        Self {
            config,
            input,
            weights,
            k0: rf * config.rows(),
            n0: cf * config.cols(),
            rows: map.rows_in_fold(rf),
            cols: map.cols_in_fold(cf),
            m: map.m(),
        }
    }

    fn fresh_row_gen(&self) -> RowGen {
        let bitwidth = self.config.bitwidth();
        match self.config.scheme() {
            s @ (ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal) => RowGen::Unary {
                ifm_src: IfmSource::for_coding(
                    if s == ComputingScheme::UnaryTemporal {
                        Coding::Temporal
                    } else {
                        Coding::Rate
                    },
                    bitwidth,
                ),
                w_rng: SobolSource::dimension(0, bitwidth - 1),
                ifm: SignMagnitude::default(),
                last_r: 0,
            },
            ComputingScheme::UGemmHybrid => RowGen::Bipolar {
                in_src: SobolSource::dimension(1, bitwidth),
                rng_ones: SobolSource::dimension(0, bitwidth),
                rng_zeros: SobolSource::dimension(2, bitwidth),
                in_threshold: 0,
            },
            _ => RowGen::Binary,
        }
    }

    /// Resets a row generator for a new MAC window on `level`.
    fn reset_row_gen(&self, gen: &mut RowGen, level: i64) {
        let bitwidth = self.config.bitwidth();
        match gen {
            RowGen::Unary {
                ifm_src,
                w_rng,
                ifm,
                last_r,
            } => {
                ifm_src.reset();
                w_rng.reset();
                *ifm = SignMagnitude::from_signed(level, bitwidth);
                *last_r = 0;
            }
            RowGen::Bipolar {
                in_src,
                rng_ones,
                rng_zeros,
                in_threshold,
            } => {
                in_src.reset();
                rng_ones.reset();
                rng_zeros.reset();
                let half = 1i64 << (bitwidth - 1);
                *in_threshold = (level.clamp(-half, half) + half) as u64;
            }
            RowGen::Binary => {}
        }
    }

    fn run(self, out: &mut Matrix<i64>, stats: &mut CycleStats) {
        let scheme = self.config.scheme();
        let bitwidth = self.config.bitwidth();
        let mac = self.config.mac_cycles() as i64;
        let mul = self.config.mul_cycles() as i64;
        let half = 1i64 << (bitwidth - 1);
        let preload = self.rows as i64;
        let (rows, cols, m) = (self.rows, self.cols, self.m as i64);

        // Stationary weights of this tile, in the scheme's operand form.
        let w_sm: Vec<Vec<SignMagnitude>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        SignMagnitude::from_signed(
                            self.weights[(self.k0 + r, self.n0 + c)],
                            bitwidth,
                        )
                    })
                    .collect()
            })
            .collect();
        let w_bipolar_thr: Vec<Vec<u64>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        let w = self.weights[(self.k0 + r, self.n0 + c)].clamp(-half, half);
                        (w + half) as u64
                    })
                    .collect()
            })
            .collect();

        // Bottom row starts first so partial sums cascade upward.
        let start = |r: usize, c: usize| preload + (rows as i64 - 1 - r as i64) + c as i64;
        let t_end = start(0, cols - 1) + m * mac - 1;

        let mut gens: Vec<RowGen> = (0..rows).map(|_| self.fresh_row_gen()).collect();
        // Per-row (bit, random) delay chains; index c holds the pair
        // generated c cycles ago.
        let mut pipes: Vec<Vec<(bool, u64)>> = vec![vec![(false, 0); cols]; rows];
        let mut accs: Vec<BinaryAccumulator> = (0..rows * cols)
            .map(|_| BinaryAccumulator::new(self.config.acc_width()))
            .collect();
        // Partial sums published at the previous cycle's M-end.
        let mut psum_prev = vec![0i64; rows * cols];
        let mut psum_next = vec![0i64; rows * cols];

        for t in 0..=t_end {
            // Phase 1: leftmost-column generation and pipeline shift.
            for r in 0..rows {
                let local0 = t - start(r, 0);
                let pair = if local0 >= 0 && local0 / mac < m {
                    let phase = local0 % mac;
                    if phase == 0 {
                        let p = (local0 / mac) as usize;
                        let level = self.input[(p, self.k0 + r)];
                        self.reset_row_gen(&mut gens[r], level);
                    }
                    if phase < mul {
                        gens[r].gen_pair()
                    } else {
                        (false, 0)
                    }
                } else {
                    (false, 0)
                };
                // Shift right by one PE; the new pair enters at column 0.
                pipes[r].rotate_right(1);
                pipes[r][0] = pair;
            }

            // Phase 2: PE compute and M-end cascade.
            for r in 0..rows {
                for c in 0..cols {
                    let local = t - start(r, c);
                    if local < 0 || local / mac >= m {
                        continue;
                    }
                    let p = (local / mac) as usize;
                    let phase = local % mac;
                    stats.busy_pe_cycles += 1;
                    let idx = r * cols + c;
                    if phase < mul {
                        match scheme {
                            ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal => {
                                let (e, rand) = pipes[r][c];
                                if e && rand < w_sm[r][c].magnitude {
                                    let ifm = SignMagnitude::from_signed(
                                        self.input[(p, self.k0 + r)],
                                        bitwidth,
                                    );
                                    accs[idx].add(ifm.product_increment(w_sm[r][c]));
                                }
                            }
                            ComputingScheme::UGemmHybrid => {
                                let (in_bit, rand) = pipes[r][c];
                                let thr = w_bipolar_thr[r][c];
                                let bit = if in_bit { rand < thr } else { rand >= thr };
                                accs[idx].add(if bit { 1 } else { -1 });
                            }
                            ComputingScheme::BinaryParallel | ComputingScheme::BinarySerial => {
                                // The exact product lands at the final
                                // multiply cycle (serial schemes spread it
                                // over N cycles without changing the value).
                                if phase == mul - 1 {
                                    accs[idx].add(
                                        self.input[(p, self.k0 + r)]
                                            * self.weights[(self.k0 + r, self.n0 + c)],
                                    );
                                }
                            }
                        }
                    }
                    if phase == mac - 1 {
                        // M-end: fold in the lower neighbour's partial sum
                        // (published last cycle) and publish our own.
                        let below = if r + 1 < rows {
                            psum_prev[(r + 1) * cols + c]
                        } else {
                            0
                        };
                        accs[idx].add(below);
                        if accs[idx].saturated() {
                            stats.saturation_events += 1;
                        }
                        let total = accs[idx].drain();
                        if r == 0 {
                            out[(p, self.n0 + c)] += total;
                        } else {
                            psum_next[idx] = total;
                        }
                    }
                }
            }
            std::mem::swap(&mut psum_prev, &mut psum_next);
        }

        stats.cycles += (t_end + 1) as u64;
        stats.tiles += 1;
    }

    /// Word-packed evaluation of the same tile: every PE's AND-gate and
    /// signed accumulation collapse to popcounts over packed comparator
    /// words ([`crate::kernel::PackedTileKernel`]); the M-end cascade is
    /// replayed per `(vector, column)` bottom-up, exactly as the scalar
    /// machine's timing makes it happen (row `r+1`'s M-end lands one cycle
    /// before row `r`'s, so its drained partial sum is what row `r` folds
    /// in).
    ///
    /// Bit-exact against [`run`](Self::run) for the uSystolic schemes:
    /// within one MAC window every increment of a PE carries the same
    /// sign, the accumulator clamps monotonically, and `drain()` clears
    /// both the value and the sticky saturation flag at every M-end — so
    /// the lump add per window reproduces the per-cycle adds, clamping
    /// and saturation count included. Cycle statistics are emitted from
    /// the closed-form schedule (`t_end`, `R'·C'·M·mac`), which
    /// `tests::packed_stats_match_serial_stats` pins against the stepped
    /// machine.
    ///
    /// Only meaningful for [`ComputingScheme::UnaryRate`] /
    /// [`ComputingScheme::UnaryTemporal`]; callers gate on
    /// [`KernelMode::resolve`].
    fn run_packed(self, out: &mut Matrix<i64>, stats: &mut CycleStats) {
        let bitwidth = self.config.bitwidth();
        let coding = if self.config.scheme() == ComputingScheme::UnaryTemporal {
            Coding::Temporal
        } else {
            Coding::Rate
        };
        let w_sm = self.tile_w_sm();
        let mut kernel = PackedTileKernel::new(bitwidth, coding, self.config.mul_cycles(), &w_sm);
        self.cascade_replay(
            |p, r, c| {
                let ifm = SignMagnitude::from_signed(self.input[(p, self.k0 + r)], bitwidth);
                kernel.window_count(r, c, ifm)
            },
            out,
            stats,
        );
    }

    /// Closed-form evaluation of a temporal tile: same M-end cascade as
    /// [`run_packed`](Self::run_packed), but every window count is
    /// `O(bitwidth)` arithmetic ([`crate::kernel::ClosedFormTileKernel`])
    /// — no drained sequences, no comparator words, no per-cycle work of
    /// any kind.
    fn run_closed(self, out: &mut Matrix<i64>, stats: &mut CycleStats) {
        let bitwidth = self.config.bitwidth();
        let w_sm = self.tile_w_sm();
        let kernel = ClosedFormTileKernel::new(bitwidth, self.config.mul_cycles(), &w_sm);
        self.cascade_replay(
            |p, r, c| {
                let ifm = SignMagnitude::from_signed(self.input[(p, self.k0 + r)], bitwidth);
                kernel.window_count(r, c, ifm)
            },
            out,
            stats,
        );
    }

    /// Word-packed evaluation of a uGEMM-H tile: each bipolar window's
    /// ±1 walk splits into the constant-sign ones-/zeros-phase popcounts
    /// of [`crate::kernel::PackedHybridTileKernel`] and lumps into one
    /// accumulator add per window. [`KernelMode::resolve`] guarantees the
    /// OREG cannot clamp mid-window here (`acc_width ≥ bitwidth + 2`), so
    /// the lump add — and the saturation count of the M-end cascade — is
    /// bit-exact against [`run`](Self::run).
    fn run_packed_hybrid(self, out: &mut Matrix<i64>, stats: &mut CycleStats) {
        let bitwidth = self.config.bitwidth();
        let half = 1i64 << (bitwidth - 1);
        let w_thr: Vec<Vec<u64>> = (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| {
                        let w = self.weights[(self.k0 + r, self.n0 + c)].clamp(-half, half);
                        (w + half) as u64
                    })
                    .collect()
            })
            .collect();
        let mut kernel = PackedHybridTileKernel::new(bitwidth, &w_thr);
        self.cascade_replay(
            |p, r, c| {
                let level = self.input[(p, self.k0 + r)].clamp(-half, half);
                kernel.window_sum(r, c, (level + half) as u64)
            },
            out,
            stats,
        );
    }

    /// This tile's stationary weights in sign-magnitude form.
    fn tile_w_sm(&self) -> Vec<Vec<SignMagnitude>> {
        let bitwidth = self.config.bitwidth();
        (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| {
                        SignMagnitude::from_signed(
                            self.weights[(self.k0 + r, self.n0 + c)],
                            bitwidth,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    /// Shared backbone of the fast tile paths: the M-end cascade replayed
    /// per `(vector, column)` bottom-up (row `r+1`'s M-end lands one
    /// cycle before row `r`'s, so its drained partial sum is what row `r`
    /// folds in), plus the closed-form schedule statistics. One
    /// accumulator is reused across windows: `drain()` clears the value
    /// and the sticky saturation flag, exactly like the per-PE OREGs.
    fn cascade_replay<F: FnMut(usize, usize, usize) -> i64>(
        &self,
        mut window: F,
        out: &mut Matrix<i64>,
        stats: &mut CycleStats,
    ) {
        let mac = self.config.mac_cycles() as i64;
        let preload = self.rows as i64;
        let (rows, cols, m) = (self.rows, self.cols, self.m);

        let mut acc = BinaryAccumulator::new(self.config.acc_width());
        for p in 0..m {
            for c in 0..cols {
                let mut below = 0i64;
                for r in (0..rows).rev() {
                    acc.add(window(p, r, c));
                    acc.add(below);
                    if acc.saturated() {
                        stats.saturation_events += 1;
                    }
                    below = acc.drain();
                }
                out[(p, self.n0 + c)] += below;
            }
        }

        let t_end = preload + (rows as i64 - 1) + (cols as i64 - 1) + m as i64 * mac - 1;
        stats.cycles += (t_end + 1) as u64;
        stats.busy_pe_cycles += (rows * cols * m) as u64 * self.config.mac_cycles();
        stats.tiles += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::GemmExecutor;
    use usystolic_gemm::im2col;
    use usystolic_gemm::{FeatureMap, WeightSet};

    fn lowered_case(seed: i64) -> (GemmConfig, Matrix<i64>, Matrix<i64>) {
        let gemm = GemmConfig::conv(4, 4, 2, 2, 2, 1, 3).expect("valid test shape");
        let input = FeatureMap::from_fn(4, 4, 2, |h, w, c| {
            ((h as i64 * 37 + w as i64 * 11 + c as i64 * 5 + seed) % 257) - 128
        });
        let weights = WeightSet::from_fn(3, 2, 2, 2, |oc, wh, ww, ic| {
            ((oc as i64 * 53 + wh as i64 * 17 + ww as i64 * 7 + ic as i64 * 3 + seed) % 257) - 128
        });
        let li = im2col::lower_input(&gemm, &input).expect("shapes match");
        let lw = im2col::lower_weights(&gemm, &weights).expect("shapes match");
        (gemm, li, lw)
    }

    fn assert_matches_fast(scheme: ComputingScheme, rows: usize, cols: usize, seed: i64) {
        let (gemm, li, lw) = lowered_case(seed);
        let cfg = SystolicConfig::new(rows, cols, scheme, 8)
            .expect("valid test configuration")
            .with_acc_width(32);
        let (fast, _) = GemmExecutor::new(cfg)
            .execute_lowered(&gemm, &li, &lw)
            .expect("fast path executes");
        let (cycle, stats) =
            cycle_accurate_gemm(&cfg, &gemm, &li, &lw).expect("cycle path executes");
        assert_eq!(fast, cycle, "{scheme} {rows}x{cols}");
        assert!(stats.cycles > 0);
        assert_eq!(stats.saturation_events, 0);
    }

    #[test]
    fn matches_fast_executor_unary_rate() {
        assert_matches_fast(ComputingScheme::UnaryRate, 4, 3, 1);
        assert_matches_fast(ComputingScheme::UnaryRate, 3, 2, 2); // folded
        assert_matches_fast(ComputingScheme::UnaryRate, 12, 14, 3); // padded
    }

    #[test]
    fn matches_fast_executor_under_narrow_accumulator_folding() {
        // K > rows with a deliberately narrow OREG: each fold's partials
        // clamp in the per-row registers, but the cross-fold partials
        // must meet unclamped in the output buffer on both paths (a flat
        // fold over the whole K reduction would clamp where the M-end
        // cascade of the stepped machine cannot).
        let (gemm, li, lw) = lowered_case(12);
        let cfg = SystolicConfig::new(3, 2, ComputingScheme::UnaryRate, 8)
            .expect("valid")
            .with_acc_width(4);
        let (fast, fast_stats) = GemmExecutor::new(cfg)
            .execute_lowered(&gemm, &li, &lw)
            .expect("fast path executes");
        let (cycle, cycle_stats) =
            cycle_accurate_gemm(&cfg, &gemm, &li, &lw).expect("cycle path executes");
        assert!(cycle_stats.saturation_events > 0, "case must saturate");
        assert_eq!(fast, cycle);
        assert_eq!(fast_stats.saturation_events, cycle_stats.saturation_events);
    }

    #[test]
    fn matches_fast_executor_unary_rate_early_terminated() {
        let (gemm, li, lw) = lowered_case(4);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8)
            .expect("valid")
            .with_effective_bitwidth(6)
            .expect("valid EBT")
            .with_acc_width(32);
        let (fast, _) = GemmExecutor::new(cfg)
            .execute_lowered(&gemm, &li, &lw)
            .expect("fast path executes");
        let (cycle, _) = cycle_accurate_gemm(&cfg, &gemm, &li, &lw).expect("cycle path executes");
        assert_eq!(fast, cycle);
    }

    #[test]
    fn matches_fast_executor_unary_temporal() {
        assert_matches_fast(ComputingScheme::UnaryTemporal, 4, 3, 5);
        assert_matches_fast(ComputingScheme::UnaryTemporal, 2, 2, 6);
    }

    #[test]
    fn matches_fast_executor_binary() {
        assert_matches_fast(ComputingScheme::BinaryParallel, 4, 3, 7);
        assert_matches_fast(ComputingScheme::BinaryParallel, 3, 5, 8);
        assert_matches_fast(ComputingScheme::BinarySerial, 4, 3, 9);
    }

    #[test]
    fn matches_fast_executor_ugemm_h() {
        assert_matches_fast(ComputingScheme::UGemmHybrid, 4, 3, 10);
        assert_matches_fast(ComputingScheme::UGemmHybrid, 3, 2, 11);
    }

    #[test]
    fn cycle_count_matches_timing_model() {
        // The measured cycles must agree with the analytic per-tile
        // formula `R' + M·mac + R' + C' − 2` within one cycle per tile.
        let (gemm, li, lw) = lowered_case(12);
        for scheme in [ComputingScheme::BinaryParallel, ComputingScheme::UnaryRate] {
            let cfg = SystolicConfig::new(4, 3, scheme, 8)
                .expect("valid")
                .with_acc_width(32);
            let (_, stats) =
                cycle_accurate_gemm(&cfg, &gemm, &li, &lw).expect("cycle path executes");
            let map = TileMapping::new(&gemm, 4, 3);
            let mut ideal = 0i64;
            for rf in 0..map.row_folds() {
                for cf in 0..map.col_folds() {
                    let r = map.rows_in_fold(rf) as i64;
                    let c = map.cols_in_fold(cf) as i64;
                    ideal += r + map.m() as i64 * cfg.mac_cycles() as i64 + r + c - 2;
                }
            }
            let diff = (stats.cycles as i64 - ideal).unsigned_abs();
            assert!(
                diff <= map.tiles() as u64,
                "{scheme}: measured {} vs ideal {ideal}",
                stats.cycles
            );
        }
    }

    #[test]
    fn busy_cycles_match_mac_work() {
        let (gemm, li, lw) = lowered_case(13);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8)
            .expect("valid")
            .with_acc_width(32);
        let (_, stats) = cycle_accurate_gemm(&cfg, &gemm, &li, &lw).expect("cycle path executes");
        // Every (vector, weight) pair occupies one PE for mac_cycles.
        let expect = gemm.macs() * cfg.mac_cycles();
        assert_eq!(stats.busy_pe_cycles, expect);
    }

    #[test]
    fn packed_kernel_and_workers_are_bit_exact() {
        // The packed kernel and the parallel tile sweep must reproduce the
        // bit-serial single-thread machine exactly, over both uSystolic
        // schemes and the full EBT sweep.
        let (gemm, li, lw) = lowered_case(21);
        for (scheme, ebts) in [
            (ComputingScheme::UnaryRate, &[8u32, 7, 6, 5, 4][..]),
            (ComputingScheme::UnaryTemporal, &[8u32][..]),
            (ComputingScheme::UGemmHybrid, &[8u32][..]),
        ] {
            for &ebt in ebts {
                let cfg = SystolicConfig::new(4, 3, scheme, 8)
                    .expect("valid")
                    .with_effective_bitwidth(ebt)
                    .expect("valid EBT")
                    .with_acc_width(32);
                let (serial, serial_stats) =
                    cycle_accurate_gemm_with(&cfg, &gemm, &li, &lw, KernelMode::Serial, 1)
                        .expect("serial path executes");
                for workers in [1usize, 2, 4, 8] {
                    let (packed, packed_stats) = cycle_accurate_gemm_with(
                        &cfg,
                        &gemm,
                        &li,
                        &lw,
                        KernelMode::Packed,
                        workers,
                    )
                    .expect("packed path executes");
                    assert_eq!(serial, packed, "{scheme} EBT {ebt} workers {workers}");
                    assert_eq!(
                        serial_stats, packed_stats,
                        "{scheme} EBT {ebt} workers {workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_stats_match_serial_stats() {
        // The packed path emits its statistics from the closed-form
        // schedule; they must equal the stepped machine's measurements,
        // saturation events included (narrow accumulator forces clamping).
        let (gemm, li, lw) = lowered_case(22);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8)
            .expect("valid")
            .with_acc_width(4);
        let (serial, serial_stats) =
            cycle_accurate_gemm_with(&cfg, &gemm, &li, &lw, KernelMode::Serial, 1)
                .expect("serial path executes");
        let (packed, packed_stats) =
            cycle_accurate_gemm_with(&cfg, &gemm, &li, &lw, KernelMode::Packed, 1)
                .expect("packed path executes");
        assert!(serial_stats.saturation_events > 0, "case must saturate");
        assert_eq!(serial, packed);
        assert_eq!(serial_stats, packed_stats);
    }

    #[test]
    fn unpackable_schemes_fall_back_to_serial() {
        // KernelMode::Packed on the binary baselines — and on a uGEMM-H
        // configuration whose OREG is too narrow for the lump add — uses
        // the bit-serial reference: identical results, identical stats.
        // (The fallback is counted and warned about, not silent; see
        // `crate::kernel::tests::fallbacks_are_counted_not_silent`.)
        let (gemm, li, lw) = lowered_case(23);
        for (scheme, acc_width) in [
            (ComputingScheme::BinaryParallel, 32),
            (ComputingScheme::BinarySerial, 32),
            (ComputingScheme::UGemmHybrid, 9), // < bitwidth + 2
        ] {
            let cfg = SystolicConfig::new(4, 3, scheme, 8)
                .expect("valid")
                .with_acc_width(acc_width);
            assert_eq!(KernelMode::Packed.resolve(&cfg), KernelPath::Serial);
            let (serial, serial_stats) =
                cycle_accurate_gemm_with(&cfg, &gemm, &li, &lw, KernelMode::Serial, 1)
                    .expect("serial path executes");
            let (forced, forced_stats) =
                cycle_accurate_gemm_with(&cfg, &gemm, &li, &lw, KernelMode::Packed, 4)
                    .expect("fallback path executes");
            assert_eq!(serial, forced, "{scheme}");
            assert_eq!(serial_stats, forced_stats, "{scheme}");
        }
    }

    #[test]
    fn temporal_closed_form_matches_serial_across_bitwidths() {
        // The closed-form path (KernelMode::Auto on temporal coding) must
        // reproduce the stepped machine at every bitwidth — mul_cycles 8,
        // 64 and 128 put the window exactly below, at and above the u64
        // word boundary the packed kernel straddles.
        let (gemm, li, lw) = lowered_case(24);
        for bitwidth in [4u32, 7, 8] {
            let half = 1i64 << (bitwidth - 1);
            let clamp = |m: &Matrix<i64>| {
                let mut c = m.clone();
                for v in c.as_mut_slice() {
                    *v = (*v).clamp(-half, half);
                }
                c
            };
            let (li, lw) = (clamp(&li), clamp(&lw));
            let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryTemporal, bitwidth)
                .expect("valid")
                .with_acc_width(32);
            assert_eq!(KernelMode::Auto.resolve(&cfg), KernelPath::ClosedForm);
            let (serial, serial_stats) =
                cycle_accurate_gemm_with(&cfg, &gemm, &li, &lw, KernelMode::Serial, 1)
                    .expect("serial path executes");
            for workers in [1usize, 2, 4, 8] {
                let (closed, closed_stats) =
                    cycle_accurate_gemm_with(&cfg, &gemm, &li, &lw, KernelMode::Auto, workers)
                        .expect("closed-form path executes");
                assert_eq!(serial, closed, "bitwidth {bitwidth} workers {workers}");
                assert_eq!(
                    serial_stats, closed_stats,
                    "bitwidth {bitwidth} workers {workers}"
                );
            }
        }
    }

    #[test]
    fn hybrid_packed_matches_serial_stats_under_saturation() {
        // At the narrowest OREG the packed hybrid path still accepts
        // (acc_width = bitwidth + 2), the M-end cascade genuinely clamps —
        // the packed path must reproduce results AND saturation counts.
        let (gemm, li, lw) = lowered_case(25);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UGemmHybrid, 8)
            .expect("valid")
            .with_acc_width(10);
        assert_eq!(KernelMode::Auto.resolve(&cfg), KernelPath::Packed);
        let (serial, serial_stats) =
            cycle_accurate_gemm_with(&cfg, &gemm, &li, &lw, KernelMode::Serial, 1)
                .expect("serial path executes");
        assert!(
            serial_stats.saturation_events > 0,
            "case must saturate to be a meaningful pin"
        );
        for workers in [1usize, 2, 4, 8] {
            let (packed, packed_stats) =
                cycle_accurate_gemm_with(&cfg, &gemm, &li, &lw, KernelMode::Packed, workers)
                    .expect("packed path executes");
            assert_eq!(serial, packed, "workers {workers}");
            assert_eq!(serial_stats, packed_stats, "workers {workers}");
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let (gemm, li, _) = lowered_case(14);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8).expect("valid");
        let bad = Matrix::<i64>::zeros(2, 2);
        assert!(cycle_accurate_gemm(&cfg, &gemm, &li, &bad).is_err());
    }
}
