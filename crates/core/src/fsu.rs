//! A fully-streaming unary (FSU) GEMM architecture — the uGEMM baseline
//! of Fig. 5a / Fig. 6, built to quantify Table I.
//!
//! An FSU design converts binary data to bitstreams **once**, computes
//! the whole GEMM as parallel bipolar uMULs feeding a unary-domain
//! MUX-adder tree, and converts back to binary at the very end. Its
//! defining properties (and deficiencies) all fall out of this structure:
//!
//! * **fixed configuration**: one instance serves exactly one GEMM shape
//!   (`K × N` PEs are wired for it) — low generalizability;
//! * **weight storage in flip-flops**: all `K × N` weights live on chip
//!   (the paper's footnote: AlexNet would need 61.1 MB of DFFs);
//! * **global broadcast** of input and weight streams — low scalability;
//! * **unary-domain accumulation**: the MUX tree computes the *scaled*
//!   sum `(1/K)·Σ`, burning `log2(K)` bits of output resolution — the
//!   accuracy deficit that motivates uSystolic's binary accumulation.

use crate::CoreError;
use usystolic_gemm::{GemmConfig, Matrix};
use usystolic_unary::rng::{NumberSource, SobolSource};

/// A fully-streaming unary GEMM instance, fixed to one configuration.
///
/// # Example
///
/// ```
/// use usystolic_core::FsuGemm;
/// use usystolic_gemm::GemmConfig;
///
/// // An FSU instance for AlexNet FC6 needs every weight in flip-flops:
/// let fc6 = GemmConfig::matmul(1, 9216, 4096)?;
/// let fsu = FsuGemm::new(fc6, 8);
/// assert!(fsu.weight_storage_bits() / 8 > 24 * 1024 * 1024);
/// # Ok::<(), usystolic_gemm::GemmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FsuGemm {
    gemm: GemmConfig,
    bitwidth: u32,
}

impl FsuGemm {
    /// Instantiates the architecture for one GEMM shape.
    #[must_use]
    pub fn new(gemm: GemmConfig, bitwidth: u32) -> Self {
        Self { gemm, bitwidth }
    }

    /// The fixed configuration this instance serves.
    #[must_use]
    pub fn gemm(&self) -> &GemmConfig {
        &self.gemm
    }

    /// On-chip weight storage requirement in bits: every weight lives in
    /// flip-flops (`K·N·bitwidth`).
    #[must_use]
    pub fn weight_storage_bits(&self) -> u64 {
        let (k, n) = self.gemm.lowered_shape();
        (k * n) as u64 * u64::from(self.bitwidth)
    }

    /// PE count: one bipolar multiplier per weight.
    #[must_use]
    pub fn pes(&self) -> u64 {
        let (k, n) = self.gemm.lowered_shape();
        (k * n) as u64
    }

    /// Stream length: `2^bitwidth` bipolar cycles.
    #[must_use]
    pub fn stream_cycles(&self) -> u64 {
        1u64 << self.bitwidth
    }

    /// Executes the fixed GEMM on lowered operands (`input: M × K`,
    /// `weights: K × N`, signed levels). Returns the output in the FSU
    /// domain: `out ≈ Σ wᵢ·iᵢ / (K · 2^(N-2))` — note the extra `1/K`
    /// against uSystolic, the MUX-tree scaling loss.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if the operands do not match the
    /// *fixed* configuration — an FSU instance cannot be retargeted.
    pub fn execute(
        &self,
        input: &Matrix<i64>,
        weights: &Matrix<i64>,
    ) -> Result<Matrix<i64>, CoreError> {
        let (k, n) = self.gemm.lowered_shape();
        let m = self.gemm.output_pixels();
        if input.rows() != m || input.cols() != k || weights.rows() != k || weights.cols() != n {
            return Err(CoreError::Shape(format!(
                "FSU instance is fixed to ({m}x{k})·({k}x{n}); got ({}x{})·({}x{})",
                input.rows(),
                input.cols(),
                weights.rows(),
                weights.cols()
            )));
        }
        let bitwidth = self.bitwidth;
        let half = 1i64 << (bitwidth - 1);
        let len = self.stream_cycles();

        let mut out = Matrix::<i64>::zeros(m, n);
        for p in 0..m {
            // One bipolar conversion per input element (B-U at the very
            // front of Fig. 5a).
            let in_thresholds: Vec<u64> = (0..k)
                .map(|kk| (input[(p, kk)].clamp(-half, half) + half) as u64)
                .collect();
            for c in 0..n {
                let w_thresholds: Vec<u64> = (0..k)
                    .map(|kk| (weights[(kk, c)].clamp(-half, half) + half) as u64)
                    .collect();
                // Shared sources model the broadcast: every PE column sees
                // the same input stream and RNG phases.
                let mut in_src = SobolSource::dimension(1, bitwidth);
                let mut rng_ones = SobolSource::dimension(0, bitwidth);
                let mut rng_zeros = SobolSource::dimension(2, bitwidth);
                // The MUX tree's select source; the multiply-shift mapping
                // draws on the (well-distributed) high bits.
                let mut select = SobolSource::dimension(3, 16);
                let mut sum = 0i64;
                for _ in 0..len {
                    let sel = ((select.next() as usize) * k) >> 16;
                    let r_in = in_src.next();
                    let r1 = rng_ones.next();
                    let r0 = rng_zeros.next();
                    // Only the selected product bit reaches the output —
                    // the scaled addition of the MUX adder.
                    let in_bit = r_in < in_thresholds[sel];
                    let bit = if in_bit {
                        r1 < w_thresholds[sel]
                    } else {
                        r0 >= w_thresholds[sel]
                    };
                    sum += if bit { 1 } else { -1 };
                }
                out[(p, c)] = sum;
            }
        }
        Ok(out)
    }

    /// The divisor recovering the level-domain dot product from the FSU
    /// output: `K · 2^(N-2)`.
    #[must_use]
    pub fn product_divisor(&self) -> f64 {
        let (k, _) = self.gemm.lowered_shape();
        k as f64 * (1u64 << (self.bitwidth - 2)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystolicConfig;
    use crate::exec::GemmExecutor;
    use crate::scheme::ComputingScheme;

    fn case() -> (GemmConfig, Matrix<i64>, Matrix<i64>, Matrix<i64>) {
        let gemm = GemmConfig::matmul(4, 8, 3).expect("valid test shape");
        let input = Matrix::from_fn(4, 8, |p, k| ((p * 8 + k) as i64 * 29 % 255) - 127);
        let weights = Matrix::from_fn(8, 3, |k, c| ((k * 3 + c) as i64 * 41 % 255) - 127);
        let mut exact = Matrix::<i64>::zeros(4, 3);
        for p in 0..4 {
            for c in 0..3 {
                exact[(p, c)] = (0..8).map(|k| input[(p, k)] * weights[(k, c)]).sum();
            }
        }
        (gemm, input, weights, exact)
    }

    #[test]
    fn fsu_approximates_the_product() {
        let (gemm, input, weights, exact) = case();
        let fsu = FsuGemm::new(gemm, 8);
        let out = fsu.execute(&input, &weights).expect("fixed shape matches");
        for p in 0..4 {
            for c in 0..3 {
                // Recover the level-domain product and normalise to value
                // units (level² scale = 2^(2N-2)).
                let got = out[(p, c)] as f64 * fsu.product_divisor() / 16384.0;
                let want = exact[(p, c)] as f64 / 16384.0;
                // The MUX-tree sampling noise grows with the dot-product
                // magnitude — that is precisely the FSU accuracy deficit.
                assert!(
                    (got - want).abs() < 0.25 + 0.15 * want.abs(),
                    "({p},{c}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn fsu_is_less_accurate_than_usystolic() {
        // The Table I accuracy column: unary-domain accumulation loses to
        // uSystolic's binary accumulation (Section II-B4a).
        let (gemm, input, weights, exact) = case();
        let fsu = FsuGemm::new(gemm, 8);
        let fsu_out = fsu.execute(&input, &weights).expect("fixed shape matches");
        let cfg = SystolicConfig::new(8, 3, ComputingScheme::UnaryRate, 8).expect("valid");
        let (usys_out, _) = GemmExecutor::new(cfg)
            .execute_lowered(&gemm, &input, &weights)
            .expect("runs");
        let rmse = |values: Vec<f64>| {
            (values.iter().map(|e| e * e).sum::<f64>() / values.len() as f64).sqrt()
        };
        let fsu_err = rmse(
            (0..12)
                .map(|i| {
                    let (p, c) = (i / 3, i % 3);
                    fsu_out[(p, c)] as f64 * fsu.product_divisor() / 16384.0
                        - exact[(p, c)] as f64 / 16384.0
                })
                .collect(),
        );
        // uSystolic's output domain is Σ(i·w)/2^(N-1): multiply by
        // 2^(N-1) and normalise by the same 2^(2N-2).
        let usys_err = rmse(
            (0..12)
                .map(|i| {
                    let (p, c) = (i / 3, i % 3);
                    usys_out[(p, c)] as f64 * 128.0 / 16384.0 - exact[(p, c)] as f64 / 16384.0
                })
                .collect(),
        );
        assert!(
            fsu_err > 2.0 * usys_err,
            "FSU rmse {fsu_err} should be well above uSystolic {usys_err}"
        );
    }

    #[test]
    fn fsu_rejects_other_shapes() {
        // Low generalizability: the instance serves exactly one shape.
        let (gemm, _, _, _) = case();
        let fsu = FsuGemm::new(gemm, 8);
        let other_in = Matrix::<i64>::zeros(4, 9);
        let other_w = Matrix::<i64>::zeros(9, 3);
        assert!(fsu.execute(&other_in, &other_w).is_err());
    }

    #[test]
    fn alexnet_fsu_weight_storage_is_infeasible() {
        // The paper's footnote: FSU AlexNet needs more on-chip storage
        // than the cloud TPU's 24 MB SRAM.
        let fc6 = GemmConfig::matmul(1, 9216, 4096).expect("valid");
        let fsu = FsuGemm::new(fc6, 8);
        assert!(fsu.weight_storage_bits() / 8 > 24 * 1024 * 1024 / 2);
        assert_eq!(fsu.pes(), 9216 * 4096);
        assert_eq!(fsu.stream_cycles(), 256);
    }
}
