//! Computing schemes evaluated by the paper (Section IV-C2).
//!
//! Five systolic-array computing schemes share the weight-stationary
//! dataflow and differ only in how a PE performs its multiply-accumulate:
//!
//! | Scheme | Paper label | MAC cycles (N-bit, EBT n) |
//! |---|---|---|
//! | [`BinaryParallel`](ComputingScheme::BinaryParallel) | BP | 1 |
//! | [`BinarySerial`](ComputingScheme::BinarySerial) | BS | N + 1 |
//! | [`UGemmHybrid`](ComputingScheme::UGemmHybrid) | UG | 2^N + 1 |
//! | [`UnaryRate`](ComputingScheme::UnaryRate) | UR | 2^(n−1) + 1 |
//! | [`UnaryTemporal`](ComputingScheme::UnaryTemporal) | UT | 2^(N−1) + 1 |

use usystolic_unary::coding::Coding;
use usystolic_unary::EarlyTermination;

/// The computing scheme of a systolic-array PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputingScheme {
    /// Conventional bit-parallel binary MAC: 1 cycle (the TPU-style
    /// baseline \[30\]).
    BinaryParallel,
    /// Bit-serial binary multiplication (one serialised input, as in
    /// Stripes \[31\]): `N` multiply cycles + 1 accumulation cycle.
    BinarySerial,
    /// uGEMM-H: hybrid unary-binary baseline with the *bipolar* uMUL of
    /// uGEMM \[69\] directly on signed data: `2^N` multiply cycles + 1.
    UGemmHybrid,
    /// uSystolic with rate-coded IFM bitstreams: `2^(n−1)` multiply cycles
    /// + 1, early-terminable to any effective bitwidth `n ≤ N`.
    UnaryRate,
    /// uSystolic with temporal-coded IFM bitstreams: `2^(N−1)` multiply
    /// cycles + 1, no early termination (Section II-B3).
    UnaryTemporal,
}

impl ComputingScheme {
    /// All five schemes in the paper's presentation order (Fig. 11: BP, BS,
    /// UG, UR, UT).
    pub const ALL: [ComputingScheme; 5] = [
        ComputingScheme::BinaryParallel,
        ComputingScheme::BinarySerial,
        ComputingScheme::UGemmHybrid,
        ComputingScheme::UnaryRate,
        ComputingScheme::UnaryTemporal,
    ];

    /// The paper's two-letter label (BP / BS / UG / UR / UT).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ComputingScheme::BinaryParallel => "BP",
            ComputingScheme::BinarySerial => "BS",
            ComputingScheme::UGemmHybrid => "UG",
            ComputingScheme::UnaryRate => "UR",
            ComputingScheme::UnaryTemporal => "UT",
        }
    }

    /// Whether the scheme is a unary (bitstream-based) design.
    #[must_use]
    pub fn is_unary(&self) -> bool {
        matches!(
            self,
            ComputingScheme::UGemmHybrid
                | ComputingScheme::UnaryRate
                | ComputingScheme::UnaryTemporal
        )
    }

    /// Whether the scheme admits early termination (rate-coded uSystolic
    /// only, Section III-C).
    #[must_use]
    pub fn supports_early_termination(&self) -> bool {
        matches!(self, ComputingScheme::UnaryRate)
    }

    /// Whether the scheme's unary operands are sign-magnitude pairs, so
    /// every increment of one MAC window carries the constant sign
    /// `ISIGN ⊕ WSIGN` (Fig. 7). False for binary schemes (multi-bit
    /// products, not ±1 increments) and for uGEMM-H, whose *bipolar*
    /// streams mix +1/−1 increments within a single window. This is the
    /// semantic property that makes the word-packed popcount kernel legal.
    #[must_use]
    pub fn sign_magnitude_operands(&self) -> bool {
        matches!(
            self,
            ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal
        )
    }

    /// The bitstream coding of the scheme's IFM path, if unary.
    #[must_use]
    pub fn coding(&self) -> Option<Coding> {
        match self {
            ComputingScheme::UGemmHybrid | ComputingScheme::UnaryRate => Some(Coding::Rate),
            ComputingScheme::UnaryTemporal => Some(Coding::Temporal),
            _ => None,
        }
    }

    /// Multiplication cycles for `bitwidth`-bit data under the given
    /// early-termination policy (ignored by schemes that do not support
    /// it).
    #[must_use]
    pub fn mul_cycles(&self, bitwidth: u32, et: EarlyTermination) -> u64 {
        match self {
            ComputingScheme::BinaryParallel => 1,
            ComputingScheme::BinarySerial => u64::from(bitwidth),
            ComputingScheme::UGemmHybrid => 1u64 << bitwidth,
            ComputingScheme::UnaryRate => et.mul_cycles(),
            ComputingScheme::UnaryTemporal => 1u64 << (bitwidth - 1),
        }
    }

    /// Total MAC cycles: multiplication plus the accumulation cycle
    /// (binary parallel folds both into its single cycle).
    #[must_use]
    pub fn mac_cycles(&self, bitwidth: u32, et: EarlyTermination) -> u64 {
        match self {
            ComputingScheme::BinaryParallel => 1,
            _ => self.mul_cycles(bitwidth, et) + 1,
        }
    }

    /// The divisor `D` such that the scheme's integer MAC result
    /// approximates `Σ wᵢ·iᵢ / D` in the quantised domain:
    ///
    /// * binary schemes are exact (`D = 1`);
    /// * uSystolic counts product-stream ones over `2^(N−1)` positions
    ///   (`D = 2^(N−1)`, independent of early termination thanks to the
    ///   top-row shifters);
    /// * uGEMM-H's bipolar ±1 accumulation over `2^N` positions yields
    ///   `D = 2^(N−2)`.
    #[must_use]
    pub fn product_divisor(&self, bitwidth: u32) -> f64 {
        match self {
            ComputingScheme::BinaryParallel | ComputingScheme::BinarySerial => 1.0,
            ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal => {
                (1u64 << (bitwidth - 1)) as f64
            }
            ComputingScheme::UGemmHybrid => (1u64 << (bitwidth - 2)) as f64,
        }
    }
}

impl core::fmt::Display for ComputingScheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            ComputingScheme::BinaryParallel => "Binary Parallel",
            ComputingScheme::BinarySerial => "Binary Serial",
            ComputingScheme::UGemmHybrid => "uGEMM-H",
            ComputingScheme::UnaryRate => "uSystolic Rate",
            ComputingScheme::UnaryTemporal => "uSystolic Temporal",
        })
    }
}

impl usystolic_obs::ToJson for ComputingScheme {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::Str(self.label().to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_cycles_match_figure_10_notation() {
        // Fig. 10: BP = 1 (MAC), BS = 8 mul cycles, Unary-32c/64c/128c,
        // uGEMM-H = 256 mul cycles — all for 8-bit data.
        let full = EarlyTermination::full(8);
        assert_eq!(ComputingScheme::BinaryParallel.mac_cycles(8, full), 1);
        assert_eq!(ComputingScheme::BinarySerial.mul_cycles(8, full), 8);
        assert_eq!(ComputingScheme::BinarySerial.mac_cycles(8, full), 9);
        assert_eq!(ComputingScheme::UnaryTemporal.mul_cycles(8, full), 128);
        assert_eq!(ComputingScheme::UGemmHybrid.mul_cycles(8, full), 256);
        let et32 = EarlyTermination::new(8, 6).unwrap();
        assert_eq!(ComputingScheme::UnaryRate.mul_cycles(8, et32), 32);
        assert_eq!(ComputingScheme::UnaryRate.mac_cycles(8, et32), 33);
    }

    #[test]
    fn only_unary_rate_early_terminates() {
        for s in ComputingScheme::ALL {
            assert_eq!(
                s.supports_early_termination(),
                s == ComputingScheme::UnaryRate,
                "{s}"
            );
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            ComputingScheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn coding_assignment() {
        use usystolic_unary::coding::Coding;
        assert_eq!(ComputingScheme::UnaryRate.coding(), Some(Coding::Rate));
        assert_eq!(
            ComputingScheme::UnaryTemporal.coding(),
            Some(Coding::Temporal)
        );
        assert_eq!(ComputingScheme::UGemmHybrid.coding(), Some(Coding::Rate));
        assert_eq!(ComputingScheme::BinaryParallel.coding(), None);
        assert!(!ComputingScheme::BinarySerial.is_unary());
        assert!(ComputingScheme::UnaryRate.is_unary());
    }

    #[test]
    fn product_divisors() {
        assert_eq!(ComputingScheme::BinaryParallel.product_divisor(8), 1.0);
        assert_eq!(ComputingScheme::UnaryRate.product_divisor(8), 128.0);
        assert_eq!(ComputingScheme::UGemmHybrid.product_divisor(8), 64.0);
    }
}
