//! Unified high-level GEMM execution across computing schemes.
//!
//! [`GemmExecutor`] is the crate's main entry point: it quantises `f64`
//! tensors to the array's data bitwidth, lowers them (im2col), dispatches
//! to the scheme's functional model, and dequantises the result — giving
//! each scheme the treatment the paper gives it in the accuracy study
//! (Section V-A).

use crate::array::{ugemm_h_gemm, unary_gemm_workers, ExecStats};
use crate::baselines::binary_gemm;
use crate::config::SystolicConfig;
use crate::scheme::ComputingScheme;
use crate::CoreError;
use usystolic_gemm::im2col;
use usystolic_gemm::quant::Quantizer;
use usystolic_gemm::{FeatureMap, GemmConfig, Matrix, WeightSet};
use usystolic_unary::et::EarlyTermination;

/// The result of a scheme-accurate GEMM execution.
#[derive(Debug, Clone)]
pub struct GemmOutcome {
    /// The dequantised output feature map.
    pub output: FeatureMap<f64>,
    /// Functional execution statistics.
    pub stats: ExecStats,
}

/// Executes GEMMs under a fixed systolic-array configuration.
///
/// # Example
///
/// ```
/// use usystolic_core::{ComputingScheme, GemmExecutor, SystolicConfig};
/// use usystolic_gemm::{FeatureMap, GemmConfig, WeightSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = SystolicConfig::new(4, 4, ComputingScheme::UnaryRate, 8)?;
/// let exec = GemmExecutor::new(cfg);
/// let gemm = GemmConfig::matmul(2, 4, 3)?;
/// let input = FeatureMap::from_fn(2, 1, 4, |m, _, k| (m + k) as f64 * 0.1);
/// let weights = WeightSet::from_fn(3, 1, 1, 4, |n, _, _, k| (n as f64 - k as f64) * 0.1);
/// let outcome = exec.execute(&gemm, &input, &weights)?;
/// assert_eq!(outcome.output.channels(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GemmExecutor {
    config: SystolicConfig,
    workers: usize,
}

impl GemmExecutor {
    /// Creates an executor for the given configuration (single-threaded
    /// tile sweep; see [`with_workers`](Self::with_workers)).
    #[must_use]
    pub fn new(config: SystolicConfig) -> Self {
        Self { config, workers: 1 }
    }

    /// Spreads the independent weight-tile sweep of the unary executors
    /// across `workers` threads of the shared work-stealing pool. Results
    /// are bit-for-bit identical for every worker count — the per-tile
    /// partials are folded sequentially in the serial sweep's order.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The executor's configuration.
    #[must_use]
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// Worker threads used for the tile sweep.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes a GEMM on real-valued tensors: quantise → lower → run the
    /// scheme's functional model → dequantise → fold.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the GEMM substrate and scheme
    /// dispatch errors.
    pub fn execute(
        &self,
        gemm: &GemmConfig,
        input: &FeatureMap<f64>,
        weights: &WeightSet<f64>,
    ) -> Result<GemmOutcome, CoreError> {
        let mut t0 = 0.0;
        usystolic_obs::with(|o| t0 = o.tracer.now_us());

        let bitwidth = self.config.bitwidth();
        let qi = Quantizer::calibrated(bitwidth, input.as_slice());
        let qw = Quantizer::calibrated(bitwidth, weights.as_slice());

        let i_int = FeatureMap::from_fn(
            input.height(),
            input.width(),
            input.channels(),
            |h, w, c| qi.quantize(input[(h, w, c)]),
        );
        let w_int = WeightSet::from_fn(
            weights.out_channels(),
            weights.height(),
            weights.width(),
            weights.in_channels(),
            |oc, wh, ww, ic| qw.quantize(weights[(oc, wh, ww, ic)]),
        );

        let li = im2col::lower_input(gemm, &i_int)?;
        let lw = im2col::lower_weights(gemm, &w_int)?;
        let (int_out, stats) = self.execute_lowered(gemm, &li, &lw)?;

        let divisor = self.config.scheme().product_divisor(bitwidth);
        let scale = divisor / (qi.scale() * qw.scale());
        let real = int_out.map(|&v| v as f64 * scale);
        let output = im2col::fold_output(gemm, &real)?;

        usystolic_obs::with(|o| {
            use usystolic_obs::ToJson;
            let t1 = o.tracer.now_us();
            o.metrics.count("core.gemm_executions", 1);
            // Crawling dividend of early termination: cycles a full-length
            // unary window (2^(N-1) multiply cycles, not 2^N) would have
            // spent beyond the truncated one.
            let saved = match self.config.scheme() {
                scheme @ (ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal) => {
                    let full = scheme.mul_cycles(
                        self.config.bitwidth(),
                        EarlyTermination::full(self.config.bitwidth()),
                    );
                    stats.mac_windows * full.saturating_sub(self.config.mul_cycles())
                }
                _ => 0,
            };
            o.metrics.count("core.et_cycles_saved", saved);
            let scheme_label = self.config.scheme().label();
            o.metrics
                .count_labeled("core.gemm_executions", &[("scheme", scheme_label)], 1);
            o.metrics.count_labeled(
                "core.mac_windows",
                &[("scheme", scheme_label)],
                stats.mac_windows,
            );
            let args = o.correlated_args(vec![
                ("scheme".to_owned(), self.config.scheme().to_json()),
                ("macs".to_owned(), gemm.macs().to_json()),
                ("mac_windows".to_owned(), stats.mac_windows.to_json()),
                (
                    "saturation_events".to_owned(),
                    stats.saturation_events.to_json(),
                ),
            ]);
            o.tracer.complete(
                format!("gemm.execute {}", self.config.scheme().label()),
                "core",
                usystolic_obs::PID_WALL,
                0,
                t0,
                t1 - t0,
                args,
            );
        });
        Ok(GemmOutcome { output, stats })
    }

    /// Executes a GEMM on already-quantised lowered matrices
    /// (`input: M × K`, `weights: K × N`, levels in
    /// `[-2^(N-1), 2^(N-1)]`), returning the raw integer result in the
    /// scheme's output domain (divide by
    /// [`ComputingScheme::product_divisor`] to recover the level-domain
    /// product).
    ///
    /// # Errors
    ///
    /// Propagates shape and configuration errors from the scheme
    /// executors.
    pub fn execute_lowered(
        &self,
        gemm: &GemmConfig,
        input: &Matrix<i64>,
        weights: &Matrix<i64>,
    ) -> Result<(Matrix<i64>, ExecStats), CoreError> {
        match self.config.scheme() {
            ComputingScheme::BinaryParallel | ComputingScheme::BinarySerial => {
                binary_gemm(&self.config, gemm, input, weights)
            }
            ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal => {
                unary_gemm_workers(&self.config, gemm, input, weights, self.workers)
            }
            ComputingScheme::UGemmHybrid => ugemm_h_gemm(&self.config, gemm, input, weights),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_gemm::loopnest::gemm_reference;
    use usystolic_gemm::stats::ErrorStats;

    fn case() -> (GemmConfig, FeatureMap<f64>, WeightSet<f64>) {
        let gemm = GemmConfig::conv(5, 5, 2, 2, 2, 1, 3).unwrap();
        let input = FeatureMap::from_fn(5, 5, 2, |h, w, c| {
            (((h * 19 + w * 7 + c * 3) % 17) as f64 / 17.0 - 0.5) * 1.6
        });
        let weights = WeightSet::from_fn(3, 2, 2, 2, |oc, wh, ww, ic| {
            (((oc * 29 + wh * 13 + ww * 5 + ic) % 23) as f64 / 23.0 - 0.45) * 0.8
        });
        (gemm, input, weights)
    }

    fn rmse_for(scheme: ComputingScheme) -> f64 {
        let (gemm, input, weights) = case();
        let reference = gemm_reference(&gemm, &input, &weights).unwrap();
        let cfg = SystolicConfig::new(4, 3, scheme, 8).unwrap();
        let out = GemmExecutor::new(cfg)
            .execute(&gemm, &input, &weights)
            .unwrap();
        ErrorStats::compare(reference.as_slice(), out.output.as_slice())
            .unwrap()
            .rmse()
    }

    #[test]
    fn every_scheme_approximates_the_reference() {
        let (gemm, input, weights) = case();
        let reference = gemm_reference(&gemm, &input, &weights).unwrap();
        let ref_scale = reference
            .as_slice()
            .iter()
            .fold(0.0f64, |m, &x| m.max(x.abs()));
        for scheme in ComputingScheme::ALL {
            let rmse = rmse_for(scheme);
            assert!(
                rmse < ref_scale * 0.12,
                "{scheme}: rmse {rmse} too large vs scale {ref_scale}"
            );
        }
    }

    #[test]
    fn binary_parallel_error_is_pure_quantisation() {
        // 8-bit quantisation error only: far below the unary variance.
        let bp = rmse_for(ComputingScheme::BinaryParallel);
        let ur = rmse_for(ComputingScheme::UnaryRate);
        assert!(bp < ur, "BP {bp} should be more accurate than UR {ur}");
    }

    #[test]
    fn ugemm_h_matches_usystolic_accuracy_class() {
        // Section V-A: uGEMM-H has the same accuracy as uSystolic (the
        // bipolar uMUL changes hardware cost, not resolution). Allow 2×.
        let ug = rmse_for(ComputingScheme::UGemmHybrid);
        let ur = rmse_for(ComputingScheme::UnaryRate);
        assert!(ug < ur * 2.5 + 1e-9, "UG {ug} vs UR {ur}");
    }

    #[test]
    fn early_termination_degrades_gracefully() {
        let (gemm, input, weights) = case();
        let reference = gemm_reference(&gemm, &input, &weights).unwrap();
        let mut last = 0.0f64;
        // Decreasing EBT must not *improve* accuracy (up to noise).
        for ebt in [8u32, 7, 6, 5] {
            let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8)
                .unwrap()
                .with_effective_bitwidth(ebt)
                .unwrap();
            let out = GemmExecutor::new(cfg)
                .execute(&gemm, &input, &weights)
                .unwrap();
            let rmse = ErrorStats::compare(reference.as_slice(), out.output.as_slice())
                .unwrap()
                .rmse();
            assert!(
                rmse >= last * 0.5,
                "EBT {ebt}: rmse {rmse} vs previous {last}"
            );
            last = rmse;
        }
    }

    #[test]
    fn rate_and_temporal_have_similar_accuracy() {
        // Section V-A: "uSystolic accuracy for rate and temporal codings
        // with an identical EBT are almost the same".
        let ur = rmse_for(ComputingScheme::UnaryRate);
        let ut = rmse_for(ComputingScheme::UnaryTemporal);
        assert!(
            (ur - ut).abs() <= ur.max(ut),
            "rate {ur} and temporal {ut} should be the same class"
        );
    }

    #[test]
    fn et_cycles_saved_is_pinned_to_stream_length() {
        // A full-length unary MAC window is 2^(N-1) multiply cycles (the
        // unary stream length), not 2^N: the crawling dividend per window
        // is 2^(N-1) − mul_cycles. EBT 6 at N = 8 saves 128 − 32 = 96
        // cycles per window; full-length rate and temporal runs save 0.
        let (gemm, input, weights) = case();
        for (scheme, ebt, saved_per_window) in [
            (ComputingScheme::UnaryRate, 6u32, 96u64),
            (ComputingScheme::UnaryRate, 8, 0),
            (ComputingScheme::UnaryTemporal, 8, 0),
        ] {
            let cfg = SystolicConfig::new(4, 3, scheme, 8)
                .unwrap()
                .with_effective_bitwidth(ebt)
                .unwrap();
            let prior = usystolic_obs::install(usystolic_obs::Session::new());
            let outcome = GemmExecutor::new(cfg)
                .execute(&gemm, &input, &weights)
                .unwrap();
            let session = usystolic_obs::take().unwrap();
            if let Some(p) = prior {
                usystolic_obs::install(p);
            }
            assert!(outcome.stats.mac_windows > 0);
            assert_eq!(
                session.metrics.counter("core.et_cycles_saved"),
                outcome.stats.mac_windows * saved_per_window,
                "{scheme} EBT {ebt}"
            );
            // The per-window saving is pinned against the scheme's own
            // stream length, for both unary schemes.
            assert_eq!(
                scheme.mul_cycles(8, EarlyTermination::full(8)),
                usystolic_unary::stream_len(8)
            );
        }
    }

    #[test]
    fn executor_workers_do_not_change_results() {
        let (gemm, input, weights) = case();
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8).unwrap();
        let one = GemmExecutor::new(cfg)
            .execute(&gemm, &input, &weights)
            .unwrap();
        let four = GemmExecutor::new(cfg)
            .with_workers(4)
            .execute(&gemm, &input, &weights)
            .unwrap();
        assert_eq!(one.output, four.output);
        assert_eq!(one.stats, four.stats);
        assert_eq!(GemmExecutor::new(cfg).with_workers(0).workers(), 1);
    }

    #[test]
    fn matmul_path_works_end_to_end() {
        let gemm = GemmConfig::matmul(3, 6, 4).unwrap();
        let input = FeatureMap::from_fn(3, 1, 6, |m, _, k| ((m * 6 + k) as f64) / 18.0 - 0.5);
        let weights =
            WeightSet::from_fn(4, 1, 1, 6, |n, _, _, k| ((n * 6 + k) as f64) / 24.0 - 0.4);
        let reference = gemm_reference(&gemm, &input, &weights).unwrap();
        let cfg = SystolicConfig::new(4, 4, ComputingScheme::UnaryRate, 10).unwrap();
        let out = GemmExecutor::new(cfg)
            .execute(&gemm, &input, &weights)
            .unwrap();
        let e = ErrorStats::compare(reference.as_slice(), out.output.as_slice()).unwrap();
        assert!(e.rmse() < 0.05, "{e}");
    }
}
