//! Word-packed MAC-window kernel shared by the functional and
//! cycle-accurate executors.
//!
//! A uSystolic MAC window is fully determined by three comparator
//! sequences that restart from the same seed every window (Fig. 4/7): the
//! C-I comparator of the IFM source, and per column the C-W comparator of
//! the conditionally-advanced weight RNG. [`usystolic_unary::packed`]
//! evaluates those comparators 64 cycles per `u64` word; this module adds
//! the per-tile precomputation that makes whole GEMM tiles cheap:
//!
//! * the IFM and weight RNG sequences are drained **once per tile** (the
//!   sources reset at every window, so one sequence serves all `M × R'`
//!   windows);
//! * every PE's weight comparator stream is packed once
//!   ([`usystolic_unary::packed::PackedCbsg`]);
//! * a window's signed count collapses to one cached enable popcount plus
//!   one prefix popcount — `sign · #{ j < n_en : seq_w[j] < |W| }` —
//!   instead of `mul_cycles` scalar iterations.
//!
//! The lump-signed count is bit-exact against the cycle-by-cycle
//! accumulation because every increment of one window carries the same
//! sign (`ISIGN ⊕ WSIGN` is constant over a window) and the downstream
//! [`usystolic_unary::add::BinaryAccumulator`] clamps monotonically.
//! `crate::pe::tests::packed_path_matches_pipeline_and_fast` and
//! `crate::array2d::tests` pin the equivalence.

use crate::config::SystolicConfig;
use crate::scheme::ComputingScheme;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use usystolic_unary::coding::Coding;
use usystolic_unary::packed::{self, PackedCbsg};
use usystolic_unary::rng::SobolSource;
use usystolic_unary::sign::SignMagnitude;

use crate::pe::IfmSource;

/// Selects how the executors evaluate MAC windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// Use the fastest legal path from the dispatch table for each
    /// scheme (closed-form for temporal coding, word-packed for the
    /// other unary schemes), the bit-serial reference everywhere else.
    #[default]
    Auto,
    /// Always step the bit-serial reference machine.
    Serial,
    /// Request the fast kernel; schemes whose table is serial-only (the
    /// binary baselines) still fall back to the bit-serial reference —
    /// visibly: the fallback records a `core.kernel.fallback` counter
    /// and warns once on stderr.
    Packed,
}

/// A concrete strategy for evaluating one scheme's MAC windows.
///
/// Together with [`kernel_paths`] this forms the dispatch table that
/// [`KernelMode::Auto`] consults: each scheme maps to the ordered list of
/// paths that are *legal* for it (bit-exact against the reference),
/// fastest first. `crates/analyze` re-derives the same table from the
/// schemes' window semantics and a tier-1 test pins the two in agreement,
/// so a new scheme cannot silently claim a packing it cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// Closed-form window arithmetic: temporal streams are `magnitude`
    /// ones then zeros, so the enable popcount is a `min` and the weight
    /// prefix popcount a digit DP
    /// ([`usystolic_unary::packed::vdc_prefix_count`]) — no drained
    /// sequence, no comparator words, `O(bitwidth)` per window.
    ClosedForm,
    /// Word-packed popcount kernel: 64 window cycles per `u64` word.
    Packed,
    /// Cycle-by-cycle bit-serial reference machine.
    Serial,
}

impl core::fmt::Display for KernelPath {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernelPath::ClosedForm => write!(f, "closed-form"),
            KernelPath::Packed => write!(f, "packed"),
            KernelPath::Serial => write!(f, "serial"),
        }
    }
}

/// Legal kernel paths for `scheme`, fastest first.
///
/// The closed form additionally requires a *temporal* enable stream (a
/// counter comparator — prefix counts collapse to `min`). Packing
/// requires every window to reduce to prefix popcounts over restarting
/// comparator streams: the sign-magnitude rate/temporal codings qualify
/// directly (constant window sign `ISIGN ⊕ WSIGN`), and uGEMM-H's
/// bipolar windows split into the two constant-advance RNG phases
/// selected by the input bit ([`PackedHybridTileKernel`]). Binary
/// arithmetic has multi-bit products, not ±1 increments — serial only.
/// The serial reference machine is legal everywhere.
#[must_use]
pub fn kernel_paths(scheme: ComputingScheme) -> &'static [KernelPath] {
    const CLOSED_FIRST: &[KernelPath] = &[
        KernelPath::ClosedForm,
        KernelPath::Packed,
        KernelPath::Serial,
    ];
    const PACKED_FIRST: &[KernelPath] = &[KernelPath::Packed, KernelPath::Serial];
    const SERIAL_ONLY: &[KernelPath] = &[KernelPath::Serial];
    match scheme {
        ComputingScheme::UnaryTemporal => CLOSED_FIRST,
        ComputingScheme::UnaryRate | ComputingScheme::UGemmHybrid => PACKED_FIRST,
        ComputingScheme::BinaryParallel | ComputingScheme::BinarySerial => SERIAL_ONLY,
    }
}

/// Set once the first requested-but-denied fast path has been reported;
/// later fallbacks only count the metric (a long sweep would otherwise
/// spam stderr with one line per tile).
static FALLBACK_WARNED: AtomicBool = AtomicBool::new(false);

/// Records a requested-but-denied fast path: bumps the
/// `core.kernel.fallback` counter (labelled with the scheme and reason)
/// and warns on stderr the first time in the process.
fn record_fallback(scheme: ComputingScheme, reason: &'static str) {
    usystolic_obs::with(|o| {
        o.metrics.count_labeled(
            "core.kernel.fallback",
            &[("scheme", scheme.label()), ("reason", reason)],
            1,
        );
    });
    if !FALLBACK_WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "warning: kernel: requested fast path falls back to the bit-serial reference \
             for {scheme} ({reason}); counting further fallbacks silently \
             (obs counter core.kernel.fallback)"
        );
    }
}

impl KernelMode {
    /// The path this mode selects for `scheme`: the fastest legal path
    /// from the dispatch table, unless the mode forbids it.
    ///
    /// This is the *static* table lookup; [`resolve`](Self::resolve)
    /// additionally applies per-configuration legality guards and is
    /// what the executors consult.
    #[must_use]
    pub fn path(self, scheme: ComputingScheme) -> KernelPath {
        let legal = kernel_paths(scheme);
        match self {
            KernelMode::Serial => KernelPath::Serial,
            // `Packed` is a request, not an override: schemes whose table
            // entry lacks the packed path still run the reference machine.
            KernelMode::Auto | KernelMode::Packed => legal[0],
        }
    }

    /// The path this mode selects for `config`, after per-configuration
    /// guards — the resolver the executors actually dispatch on.
    ///
    /// Two demotions apply, and both are *visible* (metric + one-shot
    /// stderr warning) rather than silent:
    ///
    /// * [`KernelMode::Packed`] on a serial-only scheme (the binary
    ///   baselines) runs the reference machine;
    /// * uGEMM-H packing lumps each window's ±1 walk into one
    ///   accumulator add, which is bit-exact (sticky saturation flag
    ///   included) only when the OREG cannot clamp mid-window — capacity
    ///   `2^(acc_width−1)−1 ≥ 2^bitwidth` window cycles, i.e.
    ///   `acc_width ≥ bitwidth + 2`. Narrower OREGs step the reference
    ///   machine so transient mid-window clamping is reproduced exactly.
    #[must_use]
    pub fn resolve(self, config: &SystolicConfig) -> KernelPath {
        let scheme = config.scheme();
        let requested = self.path(scheme);
        if requested == KernelPath::Serial {
            if self == KernelMode::Packed && kernel_paths(scheme)[0] == KernelPath::Serial {
                record_fallback(scheme, "serial-only scheme");
            }
            return KernelPath::Serial;
        }
        if scheme == ComputingScheme::UGemmHybrid && config.acc_width() < config.bitwidth() + 2 {
            record_fallback(scheme, "narrow accumulator");
            return KernelPath::Serial;
        }
        requested
    }

    /// Whether this mode evaluates `scheme` off the bit-serial reference
    /// machine (packed or closed-form kernel).
    #[must_use]
    pub fn packs(self, scheme: ComputingScheme) -> bool {
        self.path(scheme) != KernelPath::Serial
    }
}

impl core::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernelMode::Auto => write!(f, "auto"),
            KernelMode::Serial => write!(f, "serial"),
            KernelMode::Packed => write!(f, "packed"),
        }
    }
}

/// Per-tile packed state: one drained IFM sequence, one packed weight
/// comparator stream per PE, and a cache of enable popcounts keyed by the
/// IFM magnitudes this tile has seen.
pub(crate) struct PackedTileKernel {
    seq_i: Vec<u64>,
    w_sm: Vec<SignMagnitude>,
    w_packed: Vec<PackedCbsg>,
    cols: usize,
    // BTreeMap rather than HashMap: the cache is only keyed lookups today,
    // but the determinism-taint lint bans hash-ordered containers in
    // result-affecting crates outright.
    enable_cache: BTreeMap<u64, u64>,
}

impl PackedTileKernel {
    /// Packs one tile's stationary weights (`w_sm[r][c]`, rows of equal
    /// length) for windows of `mul_cycles` multiply cycles under `coding`.
    ///
    /// # Panics
    ///
    /// Panics if the rows of `w_sm` have unequal lengths: the tile is
    /// flattened row-major, so a ragged tile would silently misindex
    /// every PE after the short row.
    pub(crate) fn new(
        bitwidth: u32,
        coding: Coding,
        mul_cycles: u64,
        w_sm: &[Vec<SignMagnitude>],
    ) -> Self {
        let mut ifm_src = IfmSource::for_coding(coding, bitwidth);
        let seq_i = packed::sequence(&mut ifm_src, mul_cycles);
        let mut w_rng = SobolSource::dimension(0, bitwidth - 1);
        let seq_w = packed::sequence(&mut w_rng, mul_cycles);
        let (flat, cols) = flatten_tile(w_sm);
        let w_packed = flat
            .iter()
            .map(|w| PackedCbsg::from_stream(packed::comparator_stream(&seq_w, w.magnitude)))
            .collect();
        Self {
            seq_i,
            w_sm: flat,
            w_packed,
            cols,
            enable_cache: BTreeMap::new(),
        }
    }

    /// Enable-bit popcount of a window processing an IFM of `magnitude`
    /// (cached: a tile revisits the same input levels every fold).
    pub(crate) fn enabled(&mut self, magnitude: u64) -> u64 {
        let seq_i = &self.seq_i;
        *self
            .enable_cache
            .entry(magnitude)
            .or_insert_with(|| seq_i.iter().filter(|&&v| v < magnitude).count() as u64)
    }

    /// The signed count PE `(r, c)` contributes for one MAC window on
    /// `ifm` — identical to what [`crate::pe::UnaryRow::run_fast`] would
    /// accumulate for that column.
    pub(crate) fn window_count(&mut self, r: usize, c: usize, ifm: SignMagnitude) -> i64 {
        let n_en = self.enabled(ifm.magnitude);
        let idx = r * self.cols + c;
        let ones = self.w_packed[idx].ones_given(n_en);
        ifm.product_increment(self.w_sm[idx]) * ones as i64
    }
}

/// Flattens a rows-of-columns tile row-major, validating that every row
/// has the same length.
///
/// # Panics
///
/// Panics with a clear message on a ragged tile — flattened indexing
/// (`r * cols + c`) would otherwise silently read the wrong PE's state.
fn flatten_tile<T: Copy>(tile: &[Vec<T>]) -> (Vec<T>, usize) {
    let cols = tile.first().map_or(0, Vec::len);
    for (r, row) in tile.iter().enumerate() {
        assert!(
            row.len() == cols,
            "ragged weight tile: row {r} has {} columns, row 0 has {cols}",
            row.len()
        );
    }
    (tile.iter().flatten().copied().collect(), cols)
}

/// Closed-form evaluation of temporal-coded MAC windows: `O(bitwidth)`
/// arithmetic per window, no drained sequences, no comparator words.
///
/// Temporal coding makes both comparator streams analytic (the
/// tuGEMM-style shortcut):
///
/// * the C-I enable stream comes from a wrapping counter, so its popcount
///   over `mul_cycles` is [`packed::counter_prefix_count`] — effectively
///   `min(mul_cycles, |I|)`;
/// * the conditionally-advanced weight RNG is the base-2 Sobol sequence,
///   whose prefix count below `|W|` is the digit DP
///   [`packed::vdc_prefix_count`].
///
/// `tests::closed_form_matches_packed_tile_kernel` pins the equivalence
/// against [`PackedTileKernel`] (itself pinned against the bit-serial
/// machine) across word boundaries.
pub(crate) struct ClosedFormTileKernel {
    /// Comparator width of both sources (`bitwidth − 1`).
    width: u32,
    mul_cycles: u64,
    w_sm: Vec<SignMagnitude>,
    cols: usize,
}

impl ClosedFormTileKernel {
    /// Prepares one tile's stationary weights (`w_sm[r][c]`, rows of
    /// equal length) for temporal windows of `mul_cycles` multiply
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics on a ragged tile (see [`PackedTileKernel::new`]) or if
    /// `mul_cycles` exceeds the weight RNG period `2^(bitwidth−1)` (the
    /// Sobol prefix count has no closed form past one period; temporal
    /// windows are at most one period by construction).
    pub(crate) fn new(bitwidth: u32, mul_cycles: u64, w_sm: &[Vec<SignMagnitude>]) -> Self {
        let width = bitwidth - 1;
        assert!(
            mul_cycles <= 1u64 << width,
            "temporal window of {mul_cycles} cycles exceeds the RNG period"
        );
        let (w_sm, cols) = flatten_tile(w_sm);
        Self {
            width,
            mul_cycles,
            w_sm,
            cols,
        }
    }

    /// The signed count PE `(r, c)` contributes for one MAC window on
    /// `ifm` — identical to [`PackedTileKernel::window_count`], without
    /// ever materialising a stream.
    pub(crate) fn window_count(&self, r: usize, c: usize, ifm: SignMagnitude) -> i64 {
        let n_en = packed::counter_prefix_count(self.width, self.mul_cycles, ifm.magnitude);
        let idx = r * self.cols + c;
        let w = self.w_sm[idx];
        let ones = packed::vdc_prefix_count(self.width, n_en, w.magnitude);
        ifm.product_increment(w) * ones as i64
    }
}

/// The fastest exact window kernel for sign-magnitude (rate/temporal)
/// tiles: temporal windows take the closed form, rate windows the packed
/// comparator words. One dispatch per tile, not per window.
pub(crate) enum UnaryTileKernel {
    Closed(ClosedFormTileKernel),
    Packed(PackedTileKernel),
}

impl UnaryTileKernel {
    /// Prepares one tile's stationary weights under `coding` (see
    /// [`ClosedFormTileKernel::new`] / [`PackedTileKernel::new`], whose
    /// panics on ragged tiles this shares).
    pub(crate) fn new(
        bitwidth: u32,
        coding: Coding,
        mul_cycles: u64,
        w_sm: &[Vec<SignMagnitude>],
    ) -> Self {
        match coding {
            Coding::Temporal => Self::Closed(ClosedFormTileKernel::new(bitwidth, mul_cycles, w_sm)),
            Coding::Rate => Self::Packed(PackedTileKernel::new(bitwidth, coding, mul_cycles, w_sm)),
        }
    }

    /// The signed count PE `(r, c)` contributes for one MAC window on
    /// `ifm` (both variants are pinned bit-exact against the bit-serial
    /// machine).
    pub(crate) fn window_count(&mut self, r: usize, c: usize, ifm: SignMagnitude) -> i64 {
        match self {
            Self::Closed(k) => k.window_count(r, c, ifm),
            Self::Packed(k) => k.window_count(r, c, ifm),
        }
    }
}

/// Word-packed evaluation of uGEMM-H's bipolar MAC windows.
///
/// A bipolar window mixes +1/−1 increments, so it cannot lump into one
/// signed popcount directly — but the mixing is *structured*: the input
/// bit selects which of two RNGs advances (ones-phase vs zeros-phase,
/// Fig. 4 of the uGEMM lineage), and each phase is a conditionally
/// advanced comparator exactly like the C-BSG. Splitting the window into
/// its two constant-sign enable masks therefore reduces it to two prefix
/// popcounts over packed comparator streams:
///
/// ```text
/// n1   = #{ t < len : seq_in[t] < T_in }          (input-high cycles)
/// pos  = #{ j < n1 : seq_ones[j] < T_w }          (+1s while input high)
///      + #{ j < len−n1 : seq_zeros[j] ≥ T_w }     (+1s while input low)
/// sum  = 2·pos − len
/// ```
///
/// The lump add into the OREG is bit-exact against the cycle-by-cycle
/// ±1 walk whenever the accumulator cannot clamp mid-window
/// (`acc_width ≥ bitwidth + 2`, enforced by [`KernelMode::resolve`]).
pub(crate) struct PackedHybridTileKernel {
    /// Window length `2^bitwidth` (bipolar streams carry one extra
    /// resolution bit).
    len: u64,
    seq_in: Vec<u64>,
    /// Per-PE `+1` popcount streams: ones-phase comparator `< T_w` and
    /// zeros-phase comparator `≥ T_w`, both packed.
    ones_lt: Vec<PackedCbsg>,
    zeros_ge: Vec<PackedCbsg>,
    cols: usize,
    // BTreeMap, not HashMap: determinism lint (see PackedTileKernel).
    in_cache: BTreeMap<u64, u64>,
}

impl PackedHybridTileKernel {
    /// Packs one tile's stationary bipolar weight thresholds
    /// (`w_thr[r][c] = clamp(W) + 2^(bitwidth−1)`, rows of equal length).
    ///
    /// # Panics
    ///
    /// Panics on a ragged tile (see [`PackedTileKernel::new`]).
    pub(crate) fn new(bitwidth: u32, w_thr: &[Vec<u64>]) -> Self {
        let len = 1u64 << bitwidth;
        let seq_in = packed::sequence(&mut SobolSource::dimension(1, bitwidth), len);
        let seq_ones = packed::sequence(&mut SobolSource::dimension(0, bitwidth), len);
        let seq_zeros = packed::sequence(&mut SobolSource::dimension(2, bitwidth), len);
        let (flat, cols) = flatten_tile(w_thr);
        let ones_lt = flat
            .iter()
            .map(|&thr| PackedCbsg::from_stream(packed::comparator_stream(&seq_ones, thr)))
            .collect();
        // The zeros-phase emits +1 on `rand >= T_w`; pack the complement
        // comparator directly so it is a plain prefix popcount too.
        let zeros_ge = flat
            .iter()
            .map(|&thr| {
                let lt = packed::comparator_stream(&seq_zeros, thr);
                PackedCbsg::from_stream(lt.not())
            })
            .collect();
        Self {
            len,
            seq_in,
            ones_lt,
            zeros_ge,
            cols,
            in_cache: BTreeMap::new(),
        }
    }

    /// Input-high cycle count of a window on `in_threshold` (cached: a
    /// tile revisits the same input levels every fold).
    fn input_high(&mut self, in_threshold: u64) -> u64 {
        let seq_in = &self.seq_in;
        *self
            .in_cache
            .entry(in_threshold)
            .or_insert_with(|| seq_in.iter().filter(|&&v| v < in_threshold).count() as u64)
    }

    /// The signed sum PE `(r, c)`'s ±1 walk reaches over one MAC window
    /// on an input of `in_threshold` — identical to the value the
    /// bit-serial machine's OREG holds at the window's end.
    pub(crate) fn window_sum(&mut self, r: usize, c: usize, in_threshold: u64) -> i64 {
        let n1 = self.input_high(in_threshold);
        let n0 = self.len - n1;
        let idx = r * self.cols + c;
        let pos = self.ones_lt[idx].ones_given(n1) + self.zeros_ge[idx].ones_given(n0);
        2 * pos as i64 - self.len as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::UnaryRow;
    use usystolic_unary::rng::NumberSource;

    #[test]
    fn mode_packs_all_unary_schemes() {
        // Every unary scheme — rate, temporal AND uGEMM-H — now declares a
        // non-serial fastest path; the binary baselines stay serial-only.
        for scheme in ComputingScheme::ALL {
            assert!(!KernelMode::Serial.packs(scheme));
            assert_eq!(KernelMode::Auto.packs(scheme), scheme.is_unary());
            assert_eq!(KernelMode::Packed.packs(scheme), scheme.is_unary());
        }
        assert_eq!(KernelMode::default(), KernelMode::Auto);
        assert_eq!(KernelMode::Packed.to_string(), "packed");
    }

    #[test]
    fn dispatch_table_is_ordered_and_complete() {
        for scheme in ComputingScheme::ALL {
            let paths = kernel_paths(scheme);
            // Every scheme can always fall back to the reference machine,
            // and the table is ordered fastest-first.
            assert_eq!(*paths.last().unwrap(), KernelPath::Serial);
            assert!(!paths.is_empty());
            assert_eq!(
                KernelMode::Auto.path(scheme),
                paths[0],
                "Auto must select the fastest legal path for {scheme:?}"
            );
            assert_eq!(KernelMode::Serial.path(scheme), KernelPath::Serial);
        }
        // The acceptance pins of ISSUE 10: temporal leads with the closed
        // form, uGEMM-H with the packed kernel.
        assert_eq!(
            kernel_paths(ComputingScheme::UnaryTemporal)[0],
            KernelPath::ClosedForm
        );
        assert_eq!(
            kernel_paths(ComputingScheme::UGemmHybrid)[0],
            KernelPath::Packed
        );
        assert_eq!(KernelPath::ClosedForm.to_string(), "closed-form");
        assert_eq!(KernelPath::Packed.to_string(), "packed");
        assert_eq!(KernelPath::Serial.to_string(), "serial");
    }

    #[test]
    fn resolve_applies_per_config_guards() {
        let cfg = |scheme, acc| {
            SystolicConfig::new(4, 4, scheme, 8)
                .expect("valid test configuration")
                .with_acc_width(acc)
        };
        // uGEMM-H packs at acc_width ≥ bitwidth + 2 and not below (the
        // lump add could clamp mid-window there).
        let ug = ComputingScheme::UGemmHybrid;
        assert_eq!(KernelMode::Auto.resolve(&cfg(ug, 10)), KernelPath::Packed);
        assert_eq!(KernelMode::Auto.resolve(&cfg(ug, 32)), KernelPath::Packed);
        assert_eq!(KernelMode::Auto.resolve(&cfg(ug, 9)), KernelPath::Serial);
        assert_eq!(KernelMode::Packed.resolve(&cfg(ug, 9)), KernelPath::Serial);
        // Temporal resolves to the closed form regardless of OREG width
        // (constant-sign windows clamp monotonically).
        let ut = ComputingScheme::UnaryTemporal;
        assert_eq!(
            KernelMode::Auto.resolve(&cfg(ut, 9)),
            KernelPath::ClosedForm
        );
        // A Packed request on a serial-only scheme is denied, not honoured.
        let bp = ComputingScheme::BinaryParallel;
        assert_eq!(KernelMode::Packed.resolve(&cfg(bp, 32)), KernelPath::Serial);
        assert_eq!(KernelMode::Serial.resolve(&cfg(ug, 32)), KernelPath::Serial);
    }

    #[test]
    fn fallbacks_are_counted_not_silent() {
        let previous = usystolic_obs::install(usystolic_obs::Session::new());
        let cfg = SystolicConfig::new(2, 2, ComputingScheme::BinarySerial, 8)
            .expect("valid test configuration");
        assert_eq!(KernelMode::Packed.resolve(&cfg), KernelPath::Serial);
        let narrow = SystolicConfig::new(2, 2, ComputingScheme::UGemmHybrid, 8)
            .expect("valid test configuration")
            .with_acc_width(8);
        assert_eq!(KernelMode::Auto.resolve(&narrow), KernelPath::Serial);
        let session = usystolic_obs::take().expect("session installed above");
        assert_eq!(
            session.metrics.counter_labeled(
                "core.kernel.fallback",
                &[("scheme", "BS"), ("reason", "serial-only scheme")],
            ),
            1
        );
        assert_eq!(
            session.metrics.counter_labeled(
                "core.kernel.fallback",
                &[("scheme", "UG"), ("reason", "narrow accumulator")],
            ),
            1
        );
        if let Some(prev) = previous {
            usystolic_obs::install(prev);
        }
    }

    #[test]
    #[should_panic(expected = "ragged weight tile: row 1 has 2 columns, row 0 has 3")]
    fn ragged_tiles_are_rejected_up_front() {
        let sm = |v: i64| SignMagnitude::from_signed(v, 8);
        let ragged = vec![vec![sm(1), sm(2), sm(3)], vec![sm(4), sm(5)]];
        let _ = PackedTileKernel::new(8, Coding::Rate, 16, &ragged);
    }

    #[test]
    fn closed_form_matches_packed_tile_kernel() {
        // The closed form must agree with the packed kernel (itself pinned
        // against the bit-serial machine) for every temporal window shape,
        // including word-boundary multiply counts. bitwidth 7 puts the full
        // window at 64 cycles, bitwidth 8 at 128.
        let sm = |v: i64, bw: u32| SignMagnitude::from_signed(v, bw);
        for bitwidth in [4u32, 7, 8] {
            let period = 1u64 << (bitwidth - 1);
            let half = period as i64;
            let w_sm = vec![
                vec![sm(half, bitwidth), sm(-3, bitwidth), sm(0, bitwidth)],
                vec![
                    sm(1 - half, bitwidth),
                    sm(1, bitwidth),
                    sm(half / 2, bitwidth),
                ],
            ];
            for mul in [1u64, period - 1, period] {
                let closed = ClosedFormTileKernel::new(bitwidth, mul, &w_sm);
                let mut packed = PackedTileKernel::new(bitwidth, Coding::Temporal, mul, &w_sm);
                for level in [0i64, 1, -1, half / 3, -half / 2, half, -half] {
                    let ifm = sm(level, bitwidth);
                    for r in 0..2 {
                        for c in 0..3 {
                            assert_eq!(
                                closed.window_count(r, c, ifm),
                                packed.window_count(r, c, ifm),
                                "bitwidth {bitwidth} mul {mul} level {level} pe ({r},{c})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hybrid_kernel_matches_bipolar_bit_serial_walk() {
        // Scalar reference: the exact RowGen::Bipolar ± walk of the
        // cycle-accurate machine, reproduced inline.
        fn serial_window_sum(bitwidth: u32, in_thr: u64, w_thr: u64) -> i64 {
            let mut in_src = SobolSource::dimension(1, bitwidth);
            let mut rng_ones = SobolSource::dimension(0, bitwidth);
            let mut rng_zeros = SobolSource::dimension(2, bitwidth);
            let mut sum = 0i64;
            for _ in 0..(1u64 << bitwidth) {
                let in_bit = in_src.next() < in_thr;
                let r = if in_bit {
                    rng_ones.next()
                } else {
                    rng_zeros.next()
                };
                let bit = if in_bit { r < w_thr } else { r >= w_thr };
                sum += if bit { 1 } else { -1 };
            }
            sum
        }

        for bitwidth in [4u32, 6, 8] {
            let len = 1u64 << bitwidth;
            let w_thr = vec![vec![0u64, 1, len / 2], vec![len / 3, len - 1, len]];
            let mut kernel = PackedHybridTileKernel::new(bitwidth, &w_thr);
            for in_thr in [0u64, 1, len / 2 - 1, len / 2, len / 2 + 1, len - 1, len] {
                for (r, row) in w_thr.iter().enumerate() {
                    for (c, &thr) in row.iter().enumerate() {
                        assert_eq!(
                            kernel.window_sum(r, c, in_thr),
                            serial_window_sum(bitwidth, in_thr, thr),
                            "bitwidth {bitwidth} in_thr {in_thr} pe ({r},{c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tile_kernel_matches_row_fast_path() {
        let sm = |v: i64| SignMagnitude::from_signed(v, 8);
        let w_sm = vec![vec![sm(100), sm(-3), sm(77)], vec![sm(0), sm(-128), sm(55)]];
        for coding in [Coding::Rate, Coding::Temporal] {
            for mul in [16u64, 128] {
                let mut kernel = PackedTileKernel::new(8, coding, mul, &w_sm);
                for ifm_level in [0i64, 1, -77, 111, 128, -128] {
                    for (r, row_w) in w_sm.iter().enumerate() {
                        let mut row = UnaryRow::new(8, sm(ifm_level), row_w.clone(), coding);
                        let reference = row.run_fast(mul).to_vec();
                        for (c, &expect) in reference.iter().enumerate() {
                            assert_eq!(
                                kernel.window_count(r, c, sm(ifm_level)),
                                expect,
                                "{coding:?} mul {mul} ifm {ifm_level} pe ({r},{c})"
                            );
                        }
                    }
                }
            }
        }
    }
}
