//! Word-packed MAC-window kernel shared by the functional and
//! cycle-accurate executors.
//!
//! A uSystolic MAC window is fully determined by three comparator
//! sequences that restart from the same seed every window (Fig. 4/7): the
//! C-I comparator of the IFM source, and per column the C-W comparator of
//! the conditionally-advanced weight RNG. [`usystolic_unary::packed`]
//! evaluates those comparators 64 cycles per `u64` word; this module adds
//! the per-tile precomputation that makes whole GEMM tiles cheap:
//!
//! * the IFM and weight RNG sequences are drained **once per tile** (the
//!   sources reset at every window, so one sequence serves all `M × R'`
//!   windows);
//! * every PE's weight comparator stream is packed once
//!   ([`usystolic_unary::packed::PackedCbsg`]);
//! * a window's signed count collapses to one cached enable popcount plus
//!   one prefix popcount — `sign · #{ j < n_en : seq_w[j] < |W| }` —
//!   instead of `mul_cycles` scalar iterations.
//!
//! The lump-signed count is bit-exact against the cycle-by-cycle
//! accumulation because every increment of one window carries the same
//! sign (`ISIGN ⊕ WSIGN` is constant over a window) and the downstream
//! [`usystolic_unary::add::BinaryAccumulator`] clamps monotonically.
//! `crate::pe::tests::packed_path_matches_pipeline_and_fast` and
//! `crate::array2d::tests` pin the equivalence.

use crate::scheme::ComputingScheme;
use std::collections::BTreeMap;
use usystolic_unary::coding::Coding;
use usystolic_unary::packed::{self, PackedCbsg};
use usystolic_unary::rng::SobolSource;
use usystolic_unary::sign::SignMagnitude;

use crate::pe::IfmSource;

/// Selects how the executors evaluate MAC windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// Use the word-packed kernel wherever it can express the scheme
    /// (the uSystolic rate/temporal schemes), the bit-serial reference
    /// everywhere else.
    #[default]
    Auto,
    /// Always step the bit-serial reference machine.
    Serial,
    /// Request the packed kernel; schemes the packing cannot express
    /// (binary and the bipolar uGEMM-H, whose windows mix increment
    /// signs) still fall back to the bit-serial reference.
    Packed,
}

/// A concrete strategy for evaluating one scheme's MAC windows.
///
/// Together with [`kernel_paths`] this forms the dispatch table that
/// [`KernelMode::Auto`] consults: each scheme maps to the ordered list of
/// paths that are *legal* for it (bit-exact against the reference),
/// fastest first. `crates/analyze` re-derives the same table from the
/// schemes' window semantics and a tier-1 test pins the two in agreement,
/// so a new scheme cannot silently claim a packing it cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// Word-packed popcount kernel: 64 window cycles per `u64` word.
    Packed,
    /// Cycle-by-cycle bit-serial reference machine.
    Serial,
}

impl core::fmt::Display for KernelPath {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernelPath::Packed => write!(f, "packed"),
            KernelPath::Serial => write!(f, "serial"),
        }
    }
}

/// Legal kernel paths for `scheme`, fastest first.
///
/// Packing requires every increment of a window to carry one constant
/// sign (`ISIGN ⊕ WSIGN`), which holds for the sign-magnitude uSystolic
/// rate/temporal codings but not for binary arithmetic or the bipolar
/// uGEMM-H windows. The serial reference machine is legal everywhere.
#[must_use]
pub fn kernel_paths(scheme: ComputingScheme) -> &'static [KernelPath] {
    const PACKED_FIRST: &[KernelPath] = &[KernelPath::Packed, KernelPath::Serial];
    const SERIAL_ONLY: &[KernelPath] = &[KernelPath::Serial];
    match scheme {
        ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal => PACKED_FIRST,
        ComputingScheme::BinaryParallel
        | ComputingScheme::BinarySerial
        | ComputingScheme::UGemmHybrid => SERIAL_ONLY,
    }
}

impl KernelMode {
    /// The path this mode selects for `scheme`: the fastest legal path
    /// from the dispatch table, unless the mode forbids it.
    #[must_use]
    pub fn path(self, scheme: ComputingScheme) -> KernelPath {
        let legal = kernel_paths(scheme);
        match self {
            KernelMode::Serial => KernelPath::Serial,
            // `Packed` is a request, not an override: schemes whose table
            // entry lacks the packed path still run the reference machine.
            KernelMode::Auto | KernelMode::Packed => legal[0],
        }
    }

    /// Whether this mode evaluates `scheme` through the packed kernel.
    #[must_use]
    pub fn packs(self, scheme: ComputingScheme) -> bool {
        self.path(scheme) == KernelPath::Packed
    }
}

impl core::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernelMode::Auto => write!(f, "auto"),
            KernelMode::Serial => write!(f, "serial"),
            KernelMode::Packed => write!(f, "packed"),
        }
    }
}

/// Per-tile packed state: one drained IFM sequence, one packed weight
/// comparator stream per PE, and a cache of enable popcounts keyed by the
/// IFM magnitudes this tile has seen.
pub(crate) struct PackedTileKernel {
    seq_i: Vec<u64>,
    w_sm: Vec<SignMagnitude>,
    w_packed: Vec<PackedCbsg>,
    cols: usize,
    // BTreeMap rather than HashMap: the cache is only keyed lookups today,
    // but the determinism-taint lint bans hash-ordered containers in
    // result-affecting crates outright.
    enable_cache: BTreeMap<u64, u64>,
}

impl PackedTileKernel {
    /// Packs one tile's stationary weights (`w_sm[r][c]`, rows of equal
    /// length) for windows of `mul_cycles` multiply cycles under `coding`.
    pub(crate) fn new(
        bitwidth: u32,
        coding: Coding,
        mul_cycles: u64,
        w_sm: &[Vec<SignMagnitude>],
    ) -> Self {
        let mut ifm_src = IfmSource::for_coding(coding, bitwidth);
        let seq_i = packed::sequence(&mut ifm_src, mul_cycles);
        let mut w_rng = SobolSource::dimension(0, bitwidth - 1);
        let seq_w = packed::sequence(&mut w_rng, mul_cycles);
        let cols = w_sm.first().map_or(0, Vec::len);
        let flat: Vec<SignMagnitude> = w_sm.iter().flatten().copied().collect();
        let w_packed = flat
            .iter()
            .map(|w| PackedCbsg::from_stream(packed::comparator_stream(&seq_w, w.magnitude)))
            .collect();
        Self {
            seq_i,
            w_sm: flat,
            w_packed,
            cols,
            enable_cache: BTreeMap::new(),
        }
    }

    /// Enable-bit popcount of a window processing an IFM of `magnitude`
    /// (cached: a tile revisits the same input levels every fold).
    pub(crate) fn enabled(&mut self, magnitude: u64) -> u64 {
        let seq_i = &self.seq_i;
        *self
            .enable_cache
            .entry(magnitude)
            .or_insert_with(|| seq_i.iter().filter(|&&v| v < magnitude).count() as u64)
    }

    /// The signed count PE `(r, c)` contributes for one MAC window on
    /// `ifm` — identical to what [`crate::pe::UnaryRow::run_fast`] would
    /// accumulate for that column.
    pub(crate) fn window_count(&mut self, r: usize, c: usize, ifm: SignMagnitude) -> i64 {
        let n_en = self.enabled(ifm.magnitude);
        let idx = r * self.cols + c;
        let ones = self.w_packed[idx].ones_given(n_en);
        ifm.product_increment(self.w_sm[idx]) * ones as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::UnaryRow;

    #[test]
    fn mode_packs_only_unary_schemes() {
        for scheme in ComputingScheme::ALL {
            let unary = matches!(
                scheme,
                ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal
            );
            assert!(!KernelMode::Serial.packs(scheme));
            assert_eq!(KernelMode::Auto.packs(scheme), unary);
            assert_eq!(KernelMode::Packed.packs(scheme), unary);
        }
        assert_eq!(KernelMode::default(), KernelMode::Auto);
        assert_eq!(KernelMode::Packed.to_string(), "packed");
    }

    #[test]
    fn dispatch_table_is_ordered_and_complete() {
        for scheme in ComputingScheme::ALL {
            let paths = kernel_paths(scheme);
            // Every scheme can always fall back to the reference machine,
            // and the table is ordered fastest-first.
            assert_eq!(*paths.last().unwrap(), KernelPath::Serial);
            assert!(!paths.is_empty());
            assert_eq!(
                KernelMode::Auto.path(scheme),
                paths[0],
                "Auto must select the fastest legal path for {scheme:?}"
            );
            assert_eq!(KernelMode::Serial.path(scheme), KernelPath::Serial);
        }
        assert_eq!(KernelPath::Packed.to_string(), "packed");
        assert_eq!(KernelPath::Serial.to_string(), "serial");
    }

    #[test]
    fn tile_kernel_matches_row_fast_path() {
        let sm = |v: i64| SignMagnitude::from_signed(v, 8);
        let w_sm = vec![vec![sm(100), sm(-3), sm(77)], vec![sm(0), sm(-128), sm(55)]];
        for coding in [Coding::Rate, Coding::Temporal] {
            for mul in [16u64, 128] {
                let mut kernel = PackedTileKernel::new(8, coding, mul, &w_sm);
                for ifm_level in [0i64, 1, -77, 111, 128, -128] {
                    for (r, row_w) in w_sm.iter().enumerate() {
                        let mut row = UnaryRow::new(8, sm(ifm_level), row_w.clone(), coding);
                        let reference = row.run_fast(mul).to_vec();
                        for (c, &expect) in reference.iter().enumerate() {
                            assert_eq!(
                                kernel.window_count(r, c, sm(ifm_level)),
                                expect,
                                "{coding:?} mul {mul} ifm {ifm_level} pe ({r},{c})"
                            );
                        }
                    }
                }
            }
        }
    }
}
