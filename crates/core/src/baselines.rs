//! Binary baseline executors (bit-parallel and bit-serial).
//!
//! Both binary schemes compute the exact integer product — they differ
//! only in PE latency and hardware cost, which the timing and hardware
//! models account for. The functional executor is therefore shared.

use crate::array::ExecStats;
use crate::config::SystolicConfig;
use crate::scheme::ComputingScheme;
use crate::CoreError;
use usystolic_gemm::{GemmConfig, Matrix};

/// Runs a lowered GEMM (`input: M × K`, `weights: K × N`) exactly, as the
/// binary parallel and serial systolic arrays do.
///
/// # Errors
///
/// Returns [`CoreError::Config`] unless the configuration's scheme is
/// binary, and [`CoreError::Shape`] for mismatched matrices.
pub fn binary_gemm(
    config: &SystolicConfig,
    gemm: &GemmConfig,
    input: &Matrix<i64>,
    weights: &Matrix<i64>,
) -> Result<(Matrix<i64>, ExecStats), CoreError> {
    if !matches!(
        config.scheme(),
        ComputingScheme::BinaryParallel | ComputingScheme::BinarySerial
    ) {
        return Err(CoreError::Config(format!(
            "binary_gemm does not execute {}",
            config.scheme()
        )));
    }
    let (k, n) = gemm.lowered_shape();
    let m = gemm.output_pixels();
    if input.rows() != m || input.cols() != k || weights.rows() != k || weights.cols() != n {
        return Err(CoreError::Shape(format!(
            "lowered shapes must be ({m}x{k})·({k}x{n}), got ({}x{})·({}x{})",
            input.rows(),
            input.cols(),
            weights.rows(),
            weights.cols()
        )));
    }

    let mut out = Matrix::<i64>::zeros(m, n);
    for p in 0..m {
        for c in 0..n {
            let mut acc = 0i64;
            for r in 0..k {
                acc += input[(p, r)] * weights[(r, c)];
            }
            out[(p, c)] = acc;
        }
    }
    let mac_windows = (m * k * n) as u64;
    let stats = ExecStats {
        mac_windows,
        saturation_events: 0,
        compute_cycles: mac_windows * config.mac_cycles(),
    };
    usystolic_obs::with(|o| {
        o.metrics.count("core.mac_windows", stats.mac_windows);
        o.metrics.count("core.compute_cycles", stats.compute_cycles);
    });
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case() -> (GemmConfig, Matrix<i64>, Matrix<i64>) {
        let gemm = GemmConfig::matmul(3, 4, 2).unwrap();
        let input = Matrix::from_fn(3, 4, |p, k| (p * 4 + k) as i64 - 5);
        let weights = Matrix::from_fn(4, 2, |k, c| (k * 2 + c) as i64 - 3);
        (gemm, input, weights)
    }

    #[test]
    fn exact_product() {
        let (gemm, input, weights) = case();
        let cfg = SystolicConfig::new(4, 2, ComputingScheme::BinaryParallel, 8).unwrap();
        let (out, stats) = binary_gemm(&cfg, &gemm, &input, &weights).unwrap();
        for p in 0..3 {
            for c in 0..2 {
                let expect: i64 = (0..4).map(|k| input[(p, k)] * weights[(k, c)]).sum();
                assert_eq!(out[(p, c)], expect);
            }
        }
        assert_eq!(stats.mac_windows, 3 * 4 * 2);
        assert_eq!(stats.saturation_events, 0);
    }

    #[test]
    fn serial_matches_parallel_functionally() {
        let (gemm, input, weights) = case();
        let bp = SystolicConfig::new(4, 2, ComputingScheme::BinaryParallel, 8).unwrap();
        let bs = SystolicConfig::new(4, 2, ComputingScheme::BinarySerial, 8).unwrap();
        let (a, sa) = binary_gemm(&bp, &gemm, &input, &weights).unwrap();
        let (b, sb) = binary_gemm(&bs, &gemm, &input, &weights).unwrap();
        assert_eq!(a, b);
        // But the serial scheme burns more cycles.
        assert!(sb.compute_cycles > sa.compute_cycles);
    }

    #[test]
    fn rejects_unary_scheme() {
        let (gemm, input, weights) = case();
        let ur = SystolicConfig::new(4, 2, ComputingScheme::UnaryRate, 8).unwrap();
        assert!(binary_gemm(&ur, &gemm, &input, &weights).is_err());
    }

    #[test]
    fn rejects_bad_shapes() {
        let (gemm, input, _) = case();
        let cfg = SystolicConfig::new(4, 2, ComputingScheme::BinaryParallel, 8).unwrap();
        let bad = Matrix::<i64>::zeros(5, 2);
        assert!(binary_gemm(&cfg, &gemm, &input, &bad).is_err());
    }
}
