//! Weight-stationary tile mapping of a GEMM onto an `R × C` array.
//!
//! Under the weight-stationary dataflow the lowered weight matrix
//! (`K × N`, `K = WH·WW·IC`, `N = OC`) is cut into `⌈K/R⌉ × ⌈N/C⌉` tiles.
//! Each tile is preloaded once; all `M = OH·OW` input column vectors are
//! then streamed through it. The mapping drives both the functional
//! executor and the timing simulator.

use usystolic_gemm::GemmConfig;

/// The fold structure of one GEMM on one array shape.
///
/// # Example
///
/// ```
/// use usystolic_core::TileMapping;
/// use usystolic_gemm::GemmConfig;
///
/// // AlexNet FC6 on the 12x14 edge array: K = 9216 reduction rows fold
/// // 768 times; N = 4096 output channels fold 293 times.
/// let fc6 = GemmConfig::matmul(1, 9216, 4096)?;
/// let map = TileMapping::new(&fc6, 12, 14);
/// assert_eq!(map.row_folds(), 768);
/// assert_eq!(map.col_folds(), 293);
/// # Ok::<(), usystolic_gemm::GemmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileMapping {
    rows: usize,
    cols: usize,
    k: usize,
    n: usize,
    m: usize,
}

impl TileMapping {
    /// Maps `gemm` onto an array of `rows × cols` PEs.
    ///
    /// # Panics
    ///
    /// Panics if either array dimension is zero.
    #[must_use]
    pub fn new(gemm: &GemmConfig, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self {
            rows,
            cols,
            k: gemm.reduction_len(),
            n: gemm.output_channels(),
            m: gemm.output_pixels(),
        }
    }

    /// Row folds: `⌈K/R⌉`.
    #[must_use]
    pub fn row_folds(&self) -> usize {
        self.k.div_ceil(self.rows)
    }

    /// Column folds: `⌈N/C⌉`.
    #[must_use]
    pub fn col_folds(&self) -> usize {
        self.n.div_ceil(self.cols)
    }

    /// Total weight tiles preloaded over the GEMM.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.row_folds() * self.col_folds()
    }

    /// Streaming passes: every tile sees all `M` input vectors once.
    #[must_use]
    pub fn input_passes(&self) -> usize {
        self.m
    }

    /// Rows occupied by row-fold `rf` (the last fold may be partial).
    #[must_use]
    pub fn rows_in_fold(&self, rf: usize) -> usize {
        let start = rf * self.rows;
        self.rows.min(self.k.saturating_sub(start))
    }

    /// Columns occupied by column-fold `cf`.
    #[must_use]
    pub fn cols_in_fold(&self, cf: usize) -> usize {
        let start = cf * self.cols;
        self.cols.min(self.n.saturating_sub(start))
    }

    /// Average PE utilisation over the whole GEMM: occupied PE-tiles over
    /// total PE-tiles (the "MAC utilisation" of Section V-G).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let mut occupied = 0usize;
        for rf in 0..self.row_folds() {
            for cf in 0..self.col_folds() {
                occupied += self.rows_in_fold(rf) * self.cols_in_fold(cf);
            }
        }
        occupied as f64 / (self.tiles() * self.rows * self.cols) as f64
    }

    /// Reduction length `K`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output-channel count `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Streaming vector count `M`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Array rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_has_one_tile() {
        let g = GemmConfig::matmul(10, 12, 14).unwrap();
        let t = TileMapping::new(&g, 12, 14);
        assert_eq!(t.row_folds(), 1);
        assert_eq!(t.col_folds(), 1);
        assert_eq!(t.tiles(), 1);
        assert_eq!(t.input_passes(), 10);
        assert!((t.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_folds() {
        let g = GemmConfig::matmul(3, 25, 30).unwrap();
        let t = TileMapping::new(&g, 12, 14);
        assert_eq!(t.row_folds(), 3); // 12 + 12 + 1
        assert_eq!(t.col_folds(), 3); // 14 + 14 + 2
        assert_eq!(t.rows_in_fold(0), 12);
        assert_eq!(t.rows_in_fold(2), 1);
        assert_eq!(t.cols_in_fold(2), 2);
        assert!(t.utilization() < 1.0);
    }

    #[test]
    fn conv_mapping_uses_reduction_len() {
        let g = GemmConfig::conv(8, 8, 3, 3, 3, 1, 16).unwrap();
        let t = TileMapping::new(&g, 12, 14);
        assert_eq!(t.k(), 27);
        assert_eq!(t.n(), 16);
        assert_eq!(t.m(), 36);
        assert_eq!(t.row_folds(), 3);
        assert_eq!(t.col_folds(), 2);
    }

    #[test]
    fn small_gemm_underutilizes_big_array() {
        let g = GemmConfig::matmul(1, 4, 4).unwrap();
        let t = TileMapping::new(&g, 256, 256);
        assert_eq!(t.tiles(), 1);
        assert!(t.utilization() < 0.001);
    }

    #[test]
    fn utilization_accounts_partial_tiles() {
        // K=13, R=12 → folds of 12 and 1; N=C → full columns.
        let g = GemmConfig::matmul(1, 13, 14).unwrap();
        let t = TileMapping::new(&g, 12, 14);
        let expect = (12.0 * 14.0 + 1.0 * 14.0) / (2.0 * 12.0 * 14.0);
        assert!((t.utilization() - expect).abs() < 1e-12);
    }
}
