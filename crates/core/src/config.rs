//! Systolic-array configuration (Section IV-C2).

use crate::scheme::ComputingScheme;
use usystolic_unary::et::EtError;
use usystolic_unary::EarlyTermination;

/// Error constructing a [`SystolicConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Array dimensions must be non-zero.
    EmptyArray,
    /// Data bitwidth outside the supported range.
    BadBitwidth(u32),
    /// The early-termination policy is invalid for the scheme/bitwidth.
    BadEarlyTermination(EtError),
    /// Early termination requested for a scheme that does not support it.
    EtUnsupportedByScheme(ComputingScheme),
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::EmptyArray => f.write_str("array dimensions must be non-zero"),
            ConfigError::BadBitwidth(w) => write!(f, "unsupported data bitwidth {w}"),
            ConfigError::BadEarlyTermination(e) => write!(f, "bad early termination: {e}"),
            ConfigError::EtUnsupportedByScheme(s) => {
                write!(f, "{s} does not support early termination")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A complete systolic-array configuration: shape, computing scheme, data
/// bitwidth, early-termination policy and accumulator width.
///
/// # Example
///
/// ```
/// use usystolic_core::{ComputingScheme, SystolicConfig};
///
/// // The paper's edge array (Eyeriss shape, 12×14) running rate-coded
/// // uSystolic on 8-bit data, early-terminated to 32 multiply cycles.
/// let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
///     .with_mul_cycles(32)
///     .unwrap();
/// assert_eq!(cfg.mac_cycles(), 33);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystolicConfig {
    rows: usize,
    cols: usize,
    scheme: ComputingScheme,
    bitwidth: u32,
    et: EarlyTermination,
    acc_width: u32,
}

/// Array rows of the paper's **edge** configuration (MIT Eyeriss, 12×14).
pub const EDGE_ROWS: usize = 12;
/// Array columns of the paper's **edge** configuration.
pub const EDGE_COLS: usize = 14;
/// Array rows of the paper's **cloud** configuration (Google TPU, 256×256).
pub const CLOUD_ROWS: usize = 256;
/// Array columns of the paper's **cloud** configuration.
pub const CLOUD_COLS: usize = 256;

impl SystolicConfig {
    /// Creates a configuration with explicit shape, scheme and bitwidth;
    /// no early termination, default accumulator width.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyArray`] for a zero dimension and
    /// [`ConfigError::BadBitwidth`] for an unsupported bitwidth.
    pub fn new(
        rows: usize,
        cols: usize,
        scheme: ComputingScheme,
        bitwidth: u32,
    ) -> Result<Self, ConfigError> {
        if rows == 0 || cols == 0 {
            return Err(ConfigError::EmptyArray);
        }
        if !(2..=usystolic_unary::MAX_BITWIDTH).contains(&bitwidth) {
            return Err(ConfigError::BadBitwidth(bitwidth));
        }
        let acc_width = default_acc_width(scheme, bitwidth, rows);
        Ok(Self {
            rows,
            cols,
            scheme,
            bitwidth,
            et: EarlyTermination::full(bitwidth),
            acc_width,
        })
    }

    /// The paper's edge configuration: a 12×14 array (Eyeriss shape).
    ///
    /// # Panics
    ///
    /// Panics on an unsupported bitwidth (use [`new`](Self::new) for
    /// fallible construction).
    #[must_use]
    pub fn edge(scheme: ComputingScheme, bitwidth: u32) -> Self {
        // Documented `# Panics` convenience constructor: lint: allow(panic)
        Self::new(EDGE_ROWS, EDGE_COLS, scheme, bitwidth).expect("edge shape is valid")
    }

    /// The paper's cloud configuration: a 256×256 array (TPU shape).
    ///
    /// # Panics
    ///
    /// Panics on an unsupported bitwidth.
    #[must_use]
    pub fn cloud(scheme: ComputingScheme, bitwidth: u32) -> Self {
        // Documented `# Panics` convenience constructor: lint: allow(panic)
        Self::new(CLOUD_ROWS, CLOUD_COLS, scheme, bitwidth).expect("cloud shape is valid")
    }

    /// Applies an early-termination policy by effective bitwidth.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EtUnsupportedByScheme`] unless the scheme is
    /// rate-coded uSystolic (or `ebt == bitwidth`, a no-op), and
    /// [`ConfigError::BadEarlyTermination`] for an invalid EBT.
    pub fn with_effective_bitwidth(mut self, ebt: u32) -> Result<Self, ConfigError> {
        if ebt != self.bitwidth && !self.scheme.supports_early_termination() {
            return Err(ConfigError::EtUnsupportedByScheme(self.scheme));
        }
        self.et =
            EarlyTermination::new(self.bitwidth, ebt).map_err(ConfigError::BadEarlyTermination)?;
        Ok(self)
    }

    /// Applies an early-termination policy by multiply cycle count (the
    /// paper's "Unary-32c" notation).
    ///
    /// # Errors
    ///
    /// Same as [`with_effective_bitwidth`](Self::with_effective_bitwidth).
    pub fn with_mul_cycles(self, mul_cycles: u64) -> Result<Self, ConfigError> {
        let et = EarlyTermination::from_mul_cycles(self.bitwidth, mul_cycles)
            .map_err(ConfigError::BadEarlyTermination)?;
        self.with_effective_bitwidth(et.effective_bitwidth())
    }

    /// Overrides the per-PE accumulator register width.
    #[must_use]
    pub fn with_acc_width(mut self, acc_width: u32) -> Self {
        self.acc_width = acc_width;
        self
    }

    /// Array rows `R`.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns `C`.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total PE count.
    #[must_use]
    pub fn pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Computing scheme.
    #[must_use]
    pub fn scheme(&self) -> ComputingScheme {
        self.scheme
    }

    /// Data bitwidth `N`.
    #[must_use]
    pub fn bitwidth(&self) -> u32 {
        self.bitwidth
    }

    /// Early-termination policy (full-length when none was requested).
    #[must_use]
    pub fn early_termination(&self) -> EarlyTermination {
        self.et
    }

    /// Per-PE accumulator register width.
    #[must_use]
    pub fn acc_width(&self) -> u32 {
        self.acc_width
    }

    /// MAC cycles per PE under this configuration.
    #[must_use]
    pub fn mac_cycles(&self) -> u64 {
        self.scheme.mac_cycles(self.bitwidth, self.et)
    }

    /// Multiplication cycles per PE under this configuration.
    #[must_use]
    pub fn mul_cycles(&self) -> u64 {
        self.scheme.mul_cycles(self.bitwidth, self.et)
    }
}

impl core::fmt::Display for SystolicConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}x{} {} {}b ({} MAC cycles)",
            self.rows,
            self.cols,
            self.scheme.label(),
            self.bitwidth,
            self.mac_cycles()
        )
    }
}

/// Default accumulator width per scheme.
///
/// Binary designs need `2N + log2(R)` bits to hold the full-resolution
/// product sum; uSystolic's reduced-resolution accumulation needs only
/// `N + log2(R)` — the "N-bit smaller OREG" of Section III-A. One extra
/// guard bit covers the sign-magnitude maximum of `2^(N-1)` (inclusive).
fn default_acc_width(scheme: ComputingScheme, bitwidth: u32, rows: usize) -> u32 {
    // ceil(log2(r)) for r >= 2, in integer arithmetic.
    let fold_bits = (rows.max(2) - 1).ilog2() + 1;
    match scheme {
        ComputingScheme::BinaryParallel | ComputingScheme::BinarySerial => {
            2 * bitwidth + fold_bits + 2
        }
        ComputingScheme::UGemmHybrid
        | ComputingScheme::UnaryRate
        | ComputingScheme::UnaryTemporal => bitwidth + fold_bits + 2,
    }
}

impl usystolic_obs::ToJson for SystolicConfig {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("rows", self.rows().to_json()),
            ("cols", self.cols().to_json()),
            ("scheme", self.scheme().to_json()),
            ("bitwidth", self.bitwidth().to_json()),
            ("early_termination", self.early_termination().to_json()),
            ("acc_width", self.acc_width().to_json()),
            ("mac_cycles", self.mac_cycles().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_and_cloud_shapes() {
        let e = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        assert_eq!((e.rows(), e.cols()), (12, 14));
        assert_eq!(e.pes(), 168);
        let c = SystolicConfig::cloud(ComputingScheme::BinaryParallel, 16);
        assert_eq!((c.rows(), c.cols()), (256, 256));
    }

    #[test]
    fn et_by_cycles_matches_paper_notation() {
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(64)
            .unwrap();
        assert_eq!(cfg.early_termination().effective_bitwidth(), 7);
        assert_eq!(cfg.mac_cycles(), 65);
    }

    #[test]
    fn et_rejected_for_non_rate_schemes() {
        for s in [
            ComputingScheme::BinaryParallel,
            ComputingScheme::BinarySerial,
            ComputingScheme::UGemmHybrid,
            ComputingScheme::UnaryTemporal,
        ] {
            let err = SystolicConfig::edge(s, 8)
                .with_effective_bitwidth(6)
                .unwrap_err();
            assert_eq!(err, ConfigError::EtUnsupportedByScheme(s));
            // Full-length "ET" is a no-op and allowed.
            assert!(SystolicConfig::edge(s, 8)
                .with_effective_bitwidth(8)
                .is_ok());
        }
    }

    #[test]
    fn invalid_construction() {
        assert_eq!(
            SystolicConfig::new(0, 4, ComputingScheme::BinaryParallel, 8).unwrap_err(),
            ConfigError::EmptyArray
        );
        assert_eq!(
            SystolicConfig::new(4, 4, ComputingScheme::BinaryParallel, 1).unwrap_err(),
            ConfigError::BadBitwidth(1)
        );
        assert!(SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(33)
            .is_err());
    }

    #[test]
    fn accumulator_widths_reflect_reduced_resolution() {
        let bp = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        let ur = SystolicConfig::edge(ComputingScheme::UnaryRate, 8);
        // uSystolic's OREG is at least N bits narrower than binary's.
        assert!(bp.acc_width() >= ur.acc_width() + 8);
        let custom = ur.with_acc_width(10);
        assert_eq!(custom.acc_width(), 10);
    }

    #[test]
    fn display_summarises() {
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(32)
            .unwrap();
        let s = cfg.to_string();
        assert!(s.contains("12x14"));
        assert!(s.contains("UR"));
        assert!(s.contains("33"));
    }
}
