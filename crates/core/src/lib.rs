//! The uSystolic architecture: functional hybrid unary-binary systolic
//! arrays with spatial-temporal bitstream reuse (the paper's primary
//! contribution, Section III), plus the evaluated baselines.
//!
//! * [`scheme`] — the five computing schemes of the evaluation
//!   (BP / BS / UG / UR / UT) with their cycle counts.
//! * [`config`] — [`SystolicConfig`]: array shape (edge = Eyeriss 12×14,
//!   cloud = TPU 256×256), bitwidth, early termination, accumulator width.
//! * [`pe`] — cycle-level PEs of Fig. 7: C-BSG at the leftmost column,
//!   IDFF/RREG reuse pipelines, sign-steered binary accumulation.
//! * [`mapping`] — weight-stationary tile mapping (folds, utilisation).
//! * [`mod@array`] — array-level functional executors for the unary schemes,
//!   with reduced-resolution OREGs and top-row shifters.
//! * [`array2d`] — the fully cycle-accurate machine stepping every PE,
//!   pipeline register and partial-sum cascade; bit-exact against the
//!   fast executors.
//! * [`kernel`] — the word-packed MAC-window kernel ([`KernelMode`]):
//!   64 multiply cycles per `u64` word, shared by the functional and
//!   cycle-accurate executors, bit-exact against the bit-serial paths.
//! * [`fifo`] — the synchronising skew FIFOs surrounding the array.
//! * [`fsu`] — the fully-streaming unary (uGEMM-style) reference
//!   architecture used to quantify Table I.
//! * [`isa`] — the TPU-like instruction set augmented with the MAC-cycle
//!   indicator field (Section III-D), with a compiler and interpreter.
//! * [`baselines`] — exact binary parallel/serial executors.
//! * [`exec`] — [`GemmExecutor`]: quantise → lower → run → dequantise, the
//!   one-call API used by the accuracy experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod array2d;
pub mod baselines;
pub mod check;
pub mod config;
pub mod exec;
pub mod fifo;
pub mod fsu;
pub mod isa;
pub mod kernel;
pub mod mapping;
pub mod pe;
pub mod scheme;

pub use array::{ugemm_h_gemm, unary_gemm, unary_gemm_workers, ExecStats};
pub use array2d::{cycle_accurate_gemm, cycle_accurate_gemm_with, CycleStats};
pub use baselines::binary_gemm;
pub use check::{differential_check, SchemeCheck};
pub use config::{ConfigError, SystolicConfig, CLOUD_COLS, CLOUD_ROWS, EDGE_COLS, EDGE_ROWS};
pub use exec::{GemmExecutor, GemmOutcome};
pub use fifo::{DelayLine, SkewBank, SkewOrder};
pub use fsu::FsuGemm;
pub use isa::{Instruction, IsaError, Processor, Program, ProgramBuilder};
pub use kernel::{kernel_paths, KernelMode, KernelPath};
pub use mapping::TileMapping;
pub use pe::{IfmSource, UnaryRow};
pub use scheme::ComputingScheme;

/// Errors produced by the architecture crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration/scheme mismatch (e.g. running a binary scheme
    /// through the unary executor).
    Config(String),
    /// A tensor/matrix shape mismatch.
    Shape(String),
    /// An error bubbled up from the GEMM substrate.
    Gemm(usystolic_gemm::GemmError),
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Config(msg) => write!(f, "configuration error: {msg}"),
            CoreError::Shape(msg) => write!(f, "shape error: {msg}"),
            CoreError::Gemm(e) => write!(f, "gemm error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Gemm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<usystolic_gemm::GemmError> for CoreError {
    fn from(e: usystolic_gemm::GemmError) -> Self {
        CoreError::Gemm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = CoreError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let g: CoreError = usystolic_gemm::GemmError::InvalidConfig("x".into()).into();
        assert!(g.to_string().contains("x"));
        assert!(g.source().is_some());
    }
}
