//! ISA support (Section III-D).
//!
//! uSystolic keeps the data-scheduling order of binary systolic arrays,
//! so its instruction set mirrors a TPU-like weight-stationary ISA —
//! *augmented with an indicator field for the MAC cycle count*, i.e. how
//! many cycles each multiply-accumulate runs before terminating. This
//! module provides:
//!
//! * [`Instruction`] / [`Program`] — the instruction stream;
//! * [`ProgramBuilder`] — the "compiler": lowers a [`GemmConfig`] onto an
//!   array configuration, emitting the fold loops exactly as a binary
//!   array's scheduler would (the legacy-binary schedule of Fig. 1);
//! * [`Processor`] — the interpreter: validates sequencing (weights before
//!   compute, MAC cycles announced before any compute) and executes each
//!   tile through the scheme's functional model.

use crate::config::SystolicConfig;
use crate::exec::GemmExecutor;
use crate::mapping::TileMapping;
use crate::CoreError;
use usystolic_gemm::{GemmConfig, Matrix};

/// One instruction of the uSystolic ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Announce the MAC cycle count for all subsequent compute — the
    /// uSystolic augmentation over the TPU ISA. Must match a valid
    /// early-termination point of the configured scheme.
    SetMacCycles {
        /// Total MAC cycles (multiply cycles + 1).
        mac_cycles: u64,
    },
    /// Preload the weight tile of the given row/column fold; stationary
    /// until the next `LoadWeights`.
    LoadWeights {
        /// Row fold index (K dimension).
        row_fold: u32,
        /// Column fold index (N dimension).
        col_fold: u32,
    },
    /// Stream all `M` input vectors through the loaded tile. With
    /// `accumulate`, partial sums add onto the output buffer (row folds
    /// after the first); otherwise they initialise it.
    MatMul {
        /// Whether to accumulate onto existing partial sums.
        accumulate: bool,
    },
    /// Mark the current column fold's outputs complete (the OFM drains
    /// through the top-row shifters).
    DrainOutputs {
        /// Column fold index being drained.
        col_fold: u32,
    },
}

impl core::fmt::Display for Instruction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Instruction::SetMacCycles { mac_cycles } => {
                write!(f, "set_mac_cycles {mac_cycles}")
            }
            Instruction::LoadWeights { row_fold, col_fold } => {
                write!(f, "load_weights rf={row_fold} cf={col_fold}")
            }
            Instruction::MatMul { accumulate } => {
                write!(f, "matmul{}", if *accumulate { " acc" } else { "" })
            }
            Instruction::DrainOutputs { col_fold } => write!(f, "drain cf={col_fold}"),
        }
    }
}

/// A compiled instruction stream for one GEMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates a program from a hand-written instruction sequence (the
    /// [`Processor`] validates sequencing at run time).
    #[must_use]
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        Self { instructions }
    }

    /// The instructions in execution order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of weight-tile loads (one per fold pair — identical to what
    /// a binary array's scheduler would issue).
    #[must_use]
    pub fn weight_loads(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::LoadWeights { .. }))
            .count()
    }
}

impl core::fmt::Display for Program {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for i in &self.instructions {
            writeln!(f, "{i}")?;
        }
        Ok(())
    }
}

/// Compiles GEMMs into [`Program`]s for a fixed array configuration.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    config: SystolicConfig,
}

impl ProgramBuilder {
    /// Creates a builder for the given array.
    #[must_use]
    pub fn new(config: SystolicConfig) -> Self {
        Self { config }
    }

    /// Lowers a GEMM onto the array: the column-fold / row-fold loop nest
    /// of the weight-stationary schedule, prefixed by the MAC-cycle
    /// announcement.
    #[must_use]
    pub fn compile(&self, gemm: &GemmConfig) -> Program {
        let map = TileMapping::new(gemm, self.config.rows(), self.config.cols());
        let mut instructions = vec![Instruction::SetMacCycles {
            mac_cycles: self.config.mac_cycles(),
        }];
        // Fold counts are ceil(K/rows) / ceil(N/cols) of realistic layer
        // shapes and stay far below 2^32: lint: allow(narrowing)
        for cf in 0..map.col_folds() as u32 {
            // Bounded as above: lint: allow(narrowing)
            for rf in 0..map.row_folds() as u32 {
                instructions.push(Instruction::LoadWeights {
                    row_fold: rf,
                    col_fold: cf,
                });
                instructions.push(Instruction::MatMul { accumulate: rf > 0 });
            }
            instructions.push(Instruction::DrainOutputs { col_fold: cf });
        }
        Program { instructions }
    }
}

/// Errors raised by the [`Processor`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IsaError {
    /// Compute was issued before `SetMacCycles`.
    MacCyclesNotSet,
    /// The announced MAC cycle count is invalid for the scheme/bitwidth.
    BadMacCycles(u64),
    /// `MatMul` was issued with no weights loaded.
    NoWeightsLoaded,
    /// A fold index is outside the GEMM's fold structure.
    FoldOutOfRange {
        /// The offending instruction.
        instruction: Instruction,
    },
    /// `DrainOutputs` names a column fold that has not been computed.
    DrainBeforeCompute(u32),
    /// An execution error from the functional model.
    Exec(CoreError),
}

impl core::fmt::Display for IsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsaError::MacCyclesNotSet => f.write_str("compute before set_mac_cycles"),
            IsaError::BadMacCycles(c) => write!(f, "invalid MAC cycle count {c}"),
            IsaError::NoWeightsLoaded => f.write_str("matmul with no weights loaded"),
            IsaError::FoldOutOfRange { instruction } => {
                write!(f, "fold out of range in `{instruction}`")
            }
            IsaError::DrainBeforeCompute(cf) => {
                write!(f, "drain of uncomputed column fold {cf}")
            }
            IsaError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for IsaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IsaError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for IsaError {
    fn from(e: CoreError) -> Self {
        IsaError::Exec(e)
    }
}

/// Executes [`Program`]s against lowered operand matrices.
///
/// # Example
///
/// ```
/// use usystolic_core::{ComputingScheme, Processor, ProgramBuilder, SystolicConfig};
/// use usystolic_gemm::{GemmConfig, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = SystolicConfig::new(4, 4, ComputingScheme::BinaryParallel, 8)?;
/// let gemm = GemmConfig::matmul(2, 6, 5)?;
/// let program = ProgramBuilder::new(cfg).compile(&gemm);
/// let input = Matrix::from_fn(2, 6, |p, k| (p * 6 + k) as i64 - 5);
/// let weights = Matrix::from_fn(6, 5, |k, n| (k * 5 + n) as i64 - 14);
/// let out = Processor::new(cfg, gemm).run(&program, &input, &weights)?;
/// assert_eq!(out.rows(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Processor {
    config: SystolicConfig,
    gemm: GemmConfig,
}

impl Processor {
    /// Creates a processor for one array configuration and GEMM shape.
    #[must_use]
    pub fn new(config: SystolicConfig, gemm: GemmConfig) -> Self {
        Self { config, gemm }
    }

    /// Runs a program over lowered operands (`input: M × K`,
    /// `weights: K × N`, integer levels), returning the integer output in
    /// the scheme's domain (as
    /// [`GemmExecutor::execute_lowered`](crate::exec::GemmExecutor)).
    ///
    /// # Errors
    ///
    /// Returns an [`IsaError`] on sequencing violations or execution
    /// failures.
    pub fn run(
        &self,
        program: &Program,
        input: &Matrix<i64>,
        weights: &Matrix<i64>,
    ) -> Result<Matrix<i64>, IsaError> {
        let map = TileMapping::new(&self.gemm, self.config.rows(), self.config.cols());
        let (m, n) = (map.m(), map.n());
        let mut out = Matrix::<i64>::zeros(m, n);
        let mut config = self.config;
        let mut mac_set = false;
        let mut loaded: Option<(u32, u32)> = None;
        let mut computed_folds = vec![false; map.col_folds()];

        for &inst in program.instructions() {
            match inst {
                Instruction::SetMacCycles { mac_cycles } => {
                    if mac_cycles == 0 {
                        return Err(IsaError::BadMacCycles(mac_cycles));
                    }
                    if mac_cycles != config.mac_cycles() {
                        // Re-terminate: only rate-coded uSystolic may move.
                        config = config
                            .with_mul_cycles(mac_cycles - 1)
                            .map_err(|_| IsaError::BadMacCycles(mac_cycles))?;
                    }
                    mac_set = true;
                }
                Instruction::LoadWeights { row_fold, col_fold } => {
                    if row_fold as usize >= map.row_folds() || col_fold as usize >= map.col_folds()
                    {
                        return Err(IsaError::FoldOutOfRange { instruction: inst });
                    }
                    loaded = Some((row_fold, col_fold));
                }
                Instruction::MatMul { accumulate } => {
                    if !mac_set {
                        return Err(IsaError::MacCyclesNotSet);
                    }
                    let (rf, cf) = loaded.ok_or(IsaError::NoWeightsLoaded)?;
                    self.execute_tile(&config, &map, rf, cf, accumulate, input, weights, &mut out)?;
                    computed_folds[cf as usize] = true;
                }
                Instruction::DrainOutputs { col_fold } => {
                    if col_fold as usize >= map.col_folds() {
                        return Err(IsaError::FoldOutOfRange { instruction: inst });
                    }
                    if !computed_folds[col_fold as usize] {
                        return Err(IsaError::DrainBeforeCompute(col_fold));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Executes one weight tile by slicing the operands and running the
    /// scheme's functional model on the sub-GEMM.
    #[allow(clippy::too_many_arguments)]
    fn execute_tile(
        &self,
        config: &SystolicConfig,
        map: &TileMapping,
        rf: u32,
        cf: u32,
        accumulate: bool,
        input: &Matrix<i64>,
        weights: &Matrix<i64>,
        out: &mut Matrix<i64>,
    ) -> Result<(), IsaError> {
        let k0 = rf as usize * config.rows();
        let n0 = cf as usize * config.cols();
        let tile_k = map.rows_in_fold(rf as usize);
        let tile_n = map.cols_in_fold(cf as usize);
        let m = map.m();

        let sub_gemm = GemmConfig::matmul(m, tile_k, tile_n)
            .map_err(|e| IsaError::Exec(CoreError::Gemm(e)))?;
        let sub_input = Matrix::from_fn(m, tile_k, |p, k| input[(p, k0 + k)]);
        let sub_weights = Matrix::from_fn(tile_k, tile_n, |k, c| weights[(k0 + k, n0 + c)]);
        let (tile_out, _) =
            GemmExecutor::new(*config).execute_lowered(&sub_gemm, &sub_input, &sub_weights)?;
        for p in 0..m {
            for c in 0..tile_n {
                if accumulate {
                    out[(p, n0 + c)] += tile_out[(p, c)];
                } else {
                    out[(p, n0 + c)] = tile_out[(p, c)];
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ComputingScheme;

    fn case() -> (SystolicConfig, GemmConfig, Matrix<i64>, Matrix<i64>) {
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::BinaryParallel, 8)
            .expect("valid test configuration");
        let gemm = GemmConfig::matmul(3, 9, 7).expect("valid test shape");
        let input = Matrix::from_fn(3, 9, |p, k| ((p * 9 + k) % 17) as i64 - 8);
        let weights = Matrix::from_fn(9, 7, |k, n| ((k * 7 + n) % 13) as i64 - 6);
        (cfg, gemm, input, weights)
    }

    #[test]
    fn compiled_program_has_legacy_binary_structure() {
        let (cfg, gemm, _, _) = case();
        let program = ProgramBuilder::new(cfg).compile(&gemm);
        // 3 row folds × 3 col folds: 1 set + 9 loads + 9 matmuls + 3 drains.
        assert_eq!(program.weight_loads(), 9);
        assert_eq!(program.len(), 1 + 9 + 9 + 3);
        assert_eq!(
            program.instructions()[0],
            Instruction::SetMacCycles { mac_cycles: 1 }
        );
        assert!(!program.is_empty());
        // First matmul of each column fold initialises; the rest accumulate.
        let matmuls: Vec<bool> = program
            .instructions()
            .iter()
            .filter_map(|i| match i {
                Instruction::MatMul { accumulate } => Some(*accumulate),
                _ => None,
            })
            .collect();
        assert_eq!(
            matmuls,
            [false, true, true, false, true, true, false, true, true]
        );
    }

    #[test]
    fn program_execution_matches_direct_executor() {
        for scheme in ComputingScheme::ALL {
            let (_, gemm, input, weights) = case();
            let cfg = SystolicConfig::new(4, 3, scheme, 8).expect("valid configuration");
            let program = ProgramBuilder::new(cfg).compile(&gemm);
            let via_isa = Processor::new(cfg, gemm)
                .run(&program, &input, &weights)
                .expect("program runs");
            let (direct, _) = GemmExecutor::new(cfg)
                .execute_lowered(&gemm, &input, &weights)
                .expect("direct run");
            assert_eq!(via_isa, direct, "{scheme}");
        }
    }

    #[test]
    fn mac_cycles_field_reterminates_unary() {
        // The ISA's MAC-cycle indicator changes the early-termination
        // point at run time (the dynamic knob of Section V-H).
        let (_, gemm, input, weights) = case();
        let cfg =
            SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8).expect("valid configuration");
        let mut program = ProgramBuilder::new(cfg)
            .compile(&gemm)
            .instructions()
            .to_vec();
        program[0] = Instruction::SetMacCycles { mac_cycles: 33 }; // EBT 6
        let out = Processor::new(cfg, gemm)
            .run(
                &Program {
                    instructions: program,
                },
                &input,
                &weights,
            )
            .expect("program runs");
        let et_cfg = cfg.with_mul_cycles(32).expect("valid EBT");
        let (direct, _) = GemmExecutor::new(et_cfg)
            .execute_lowered(&gemm, &input, &weights)
            .expect("direct run");
        assert_eq!(out, direct);
    }

    #[test]
    fn sequencing_violations_are_rejected() {
        let (cfg, gemm, input, weights) = case();
        let proc = Processor::new(cfg, gemm);
        // MatMul before SetMacCycles.
        let p = Program {
            instructions: vec![
                Instruction::LoadWeights {
                    row_fold: 0,
                    col_fold: 0,
                },
                Instruction::MatMul { accumulate: false },
            ],
        };
        assert_eq!(
            proc.run(&p, &input, &weights).unwrap_err(),
            IsaError::MacCyclesNotSet
        );
        // MatMul before LoadWeights.
        let p = Program {
            instructions: vec![
                Instruction::SetMacCycles { mac_cycles: 1 },
                Instruction::MatMul { accumulate: false },
            ],
        };
        assert_eq!(
            proc.run(&p, &input, &weights).unwrap_err(),
            IsaError::NoWeightsLoaded
        );
        // Fold out of range.
        let p = Program {
            instructions: vec![
                Instruction::SetMacCycles { mac_cycles: 1 },
                Instruction::LoadWeights {
                    row_fold: 99,
                    col_fold: 0,
                },
            ],
        };
        assert!(matches!(
            proc.run(&p, &input, &weights).unwrap_err(),
            IsaError::FoldOutOfRange { .. }
        ));
        // Drain before compute.
        let p = Program {
            instructions: vec![
                Instruction::SetMacCycles { mac_cycles: 1 },
                Instruction::DrainOutputs { col_fold: 0 },
            ],
        };
        assert_eq!(
            proc.run(&p, &input, &weights).unwrap_err(),
            IsaError::DrainBeforeCompute(0)
        );
        // Invalid MAC cycle counts.
        let p = Program {
            instructions: vec![Instruction::SetMacCycles { mac_cycles: 0 }],
        };
        assert_eq!(
            proc.run(&p, &input, &weights).unwrap_err(),
            IsaError::BadMacCycles(0)
        );
        let p = Program {
            instructions: vec![Instruction::SetMacCycles { mac_cycles: 100 }],
        };
        assert_eq!(
            proc.run(&p, &input, &weights).unwrap_err(),
            IsaError::BadMacCycles(100)
        );
    }

    #[test]
    fn instruction_and_program_display() {
        let (cfg, gemm, _, _) = case();
        let program = ProgramBuilder::new(cfg).compile(&gemm);
        let text = program.to_string();
        assert!(text.contains("set_mac_cycles 1"));
        assert!(text.contains("load_weights rf=0 cf=0"));
        assert!(text.contains("matmul acc"));
        assert!(text.contains("drain cf=2"));
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        assert!(IsaError::MacCyclesNotSet
            .to_string()
            .contains("set_mac_cycles"));
        let e: IsaError = CoreError::Config("x".into()).into();
        assert!(e.source().is_some());
    }
}
