//! Functional array-level executors for the unary computing schemes.
//!
//! These run a complete (lowered) GEMM through the weight-stationary tile
//! mapping with the cycle-level row model of [`crate::pe`], including the
//! reduced-resolution binary accumulation and the top-row shifters of the
//! early-termination path.

use crate::config::SystolicConfig;
use crate::mapping::TileMapping;
use crate::scheme::ComputingScheme;
use crate::CoreError;
use usystolic_gemm::{GemmConfig, Matrix};
use usystolic_unary::add::BinaryAccumulator;
use usystolic_unary::coding::Coding;
use usystolic_unary::sign::SignMagnitude;

/// Execution statistics of a functional GEMM run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// MAC windows executed (one per weight/input element pair).
    pub mac_windows: u64,
    /// Accumulator saturation events (OREG overflow under the configured
    /// reduced-resolution width).
    pub saturation_events: u64,
    /// PE compute cycles summed over all MAC windows (functional count;
    /// the timing simulator models overlap and stalls).
    pub compute_cycles: u64,
}

impl ExecStats {
    /// Merges another run's statistics into this one (e.g. when summing
    /// over the layers of a network).
    pub fn absorb(&mut self, other: ExecStats) {
        self.mac_windows += other.mac_windows;
        self.saturation_events += other.saturation_events;
        self.compute_cycles += other.compute_cycles;
    }
}

/// Records one tile's wall-clock span on the [`usystolic_obs::PID_WALL`]
/// lane (no-op when no session is installed — in particular on worker
/// threads of the parallel tile sweep, which carry no session).
pub(crate) fn record_tile(
    kernel: &'static str,
    cf: usize,
    rf: usize,
    rows: usize,
    cols: usize,
    t0: f64,
) {
    usystolic_obs::with(|o| {
        use usystolic_obs::ToJson;
        let t1 = o.tracer.now_us();
        o.metrics.observe("core.tile_us", t1 - t0);
        o.metrics
            .observe_labeled("core.tile_us", &[("kernel", kernel)], t1 - t0);
        o.metrics
            .count_labeled("core.tiles", &[("kernel", kernel)], 1);
        // `correlated_args` stamps the active request/shard ids (set by
        // the serve engine) onto the tile span, closing the admission →
        // batch → layer → tile chain in the trace.
        let args = o.correlated_args(vec![
            ("col_fold".to_owned(), (cf as u64).to_json()),
            ("row_fold".to_owned(), (rf as u64).to_json()),
            ("rows".to_owned(), (rows as u64).to_json()),
            ("cols".to_owned(), (cols as u64).to_json()),
        ]);
        o.tracer.complete(
            format!("{kernel} tile c{cf}r{rf}"),
            "core",
            usystolic_obs::PID_WALL,
            1,
            t0,
            t1 - t0,
            args,
        );
    });
}

/// Folds a finished kernel run's statistics into the session counters.
fn record_kernel_stats(stats: &ExecStats) {
    usystolic_obs::with(|o| {
        o.metrics.count("core.mac_windows", stats.mac_windows);
        o.metrics.count("core.compute_cycles", stats.compute_cycles);
        o.metrics
            .count("core.saturation_events", stats.saturation_events);
    });
}

fn check_lowered(
    gemm: &GemmConfig,
    input: &Matrix<i64>,
    weights: &Matrix<i64>,
) -> Result<(), CoreError> {
    let (k, n) = gemm.lowered_shape();
    let m = gemm.output_pixels();
    if input.rows() != m || input.cols() != k {
        return Err(CoreError::Shape(format!(
            "lowered input must be {m}x{k}, got {}x{}",
            input.rows(),
            input.cols()
        )));
    }
    if weights.rows() != k || weights.cols() != n {
        return Err(CoreError::Shape(format!(
            "lowered weights must be {k}x{n}, got {}x{}",
            weights.rows(),
            weights.cols()
        )));
    }
    Ok(())
}

/// Runs a lowered GEMM (`input: M × K`, `weights: K × N`, signed integer
/// levels in `[-2^(N-1), 2^(N-1)]`) through the uSystolic array model.
///
/// Per weight tile and input vector, each occupied row executes one
/// rate/temporal MAC window (bit-exact with
/// [`crate::pe::UnaryRow::run_fast`], evaluated through the word-packed
/// kernel of [`crate::kernel`]); the per-PE signed counts flow upward
/// through reduced-resolution [`BinaryAccumulator`]s and the final
/// partial sums are rescaled by the early-termination shift at the
/// top-row shifters.
///
/// # Errors
///
/// Returns [`CoreError::Shape`] for mismatched matrices and
/// [`CoreError::Config`] if the configuration's scheme is not a uSystolic
/// scheme.
pub fn unary_gemm(
    config: &SystolicConfig,
    gemm: &GemmConfig,
    input: &Matrix<i64>,
    weights: &Matrix<i64>,
) -> Result<(Matrix<i64>, ExecStats), CoreError> {
    unary_gemm_workers(config, gemm, input, weights, 1)
}

/// [`unary_gemm`] with an explicit worker count for the weight-tile sweep.
///
/// Tiles are independent, so their per-window signed counts are computed
/// in parallel on the shared work-stealing pool ([`usystolic_pool`]) with
/// the word-packed kernel of [`crate::kernel`] (the counts equal
/// [`crate::pe::UnaryRow::run_fast`]'s bit for bit). The counts are then
/// folded into
/// the shared reduced-resolution accumulators **sequentially, in the
/// exact `(col_fold, row_fold, vector, row, column)` order of the serial
/// sweep** — accumulator clamping is order-sensitive, and this keeps the
/// output and the saturation statistics bit-for-bit identical for every
/// worker count (`tests::worker_count_does_not_change_results`).
///
/// # Errors
///
/// Returns [`CoreError::Shape`] for mismatched matrices,
/// [`CoreError::Config`] if the configuration's scheme is not a uSystolic
/// scheme or the worker pool fails.
pub fn unary_gemm_workers(
    config: &SystolicConfig,
    gemm: &GemmConfig,
    input: &Matrix<i64>,
    weights: &Matrix<i64>,
    workers: usize,
) -> Result<(Matrix<i64>, ExecStats), CoreError> {
    let coding = match config.scheme() {
        ComputingScheme::UnaryRate => Coding::Rate,
        ComputingScheme::UnaryTemporal => Coding::Temporal,
        other => {
            return Err(CoreError::Config(format!(
                "unary_gemm does not execute {other}"
            )))
        }
    };
    check_lowered(gemm, input, weights)?;

    let map = TileMapping::new(gemm, config.rows(), config.cols());
    let (m, n) = (map.m(), map.n());
    let bitwidth = config.bitwidth();
    let mul_cycles = config.mul_cycles();
    let et = config.early_termination();

    // Serial sweep order: column folds outer, row folds inner.
    let tiles: Vec<(usize, usize)> = (0..map.col_folds())
        .flat_map(|cf| (0..map.row_folds()).map(move |rf| (cf, rf)))
        .collect();

    // Phase 1 (parallel): per tile, the signed count every (vector, row,
    // column) MAC window contributes. Pure computation — no shared state,
    // results land in task order whatever the interleaving.
    let partials = usystolic_pool::run_indexed(workers, tiles.len(), |i| {
        let (cf, rf) = tiles[i];
        let n0 = cf * config.cols();
        let k0 = rf * config.rows();
        let tile_rows = map.rows_in_fold(rf);
        let tile_cols = map.cols_in_fold(cf);
        let mut tile_t0 = 0.0;
        usystolic_obs::with(|o| tile_t0 = o.tracer.now_us());
        // Pre-split the tile's weights into sign-magnitude rows once for
        // all M windows: rate tiles pack their comparator streams,
        // temporal tiles need no streams at all (closed-form windows).
        let tile_weights: Vec<Vec<SignMagnitude>> = (0..tile_rows)
            .map(|r| {
                (0..tile_cols)
                    .map(|c| SignMagnitude::from_signed(weights[(k0 + r, n0 + c)], bitwidth))
                    .collect()
            })
            .collect();
        let mut kernel =
            crate::kernel::UnaryTileKernel::new(bitwidth, coding, mul_cycles, &tile_weights);
        let mut counts = Vec::with_capacity(m * tile_rows * tile_cols);
        for p in 0..m {
            for r in 0..tile_rows {
                let ifm = SignMagnitude::from_signed(input[(p, k0 + r)], bitwidth);
                for c in 0..tile_cols {
                    counts.push(kernel.window_count(r, c, ifm));
                }
            }
        }
        record_tile("unary_gemm", cf, rf, tile_rows, tile_cols, tile_t0);
        counts
    })
    .map_err(|e| CoreError::Config(format!("tile sweep worker pool failed: {e}")))?;

    // Phase 2 (sequential): replay each tile's M-end cascade in the
    // serial sweep's order. Per (vector, column) the partial sum flows
    // bottom-up through one reduced-resolution OREG per occupied row —
    // fresh at each window, drained at its M-end (steps 3–4 of Fig. 7) —
    // so at most `min(rows, K)` windows ever share a register, and the
    // cross-fold partials meet in the full-precision output buffer.
    // This is bit-exact with the stepped machine of [`crate::array2d`],
    // clamping and saturation statistics included (a flat fold over the
    // whole `K` reduction would clamp where the hardware cannot).
    let mut out = Matrix::<i64>::zeros(m, n);
    let mut stats = ExecStats::default();
    for (counts, &(cf, rf)) in partials.iter().zip(&tiles) {
        let n0 = cf * config.cols();
        let tile_rows = map.rows_in_fold(rf);
        let tile_cols = map.cols_in_fold(cf);
        for p in 0..m {
            for c in 0..tile_cols {
                let mut partial = 0i64;
                for r in (0..tile_rows).rev() {
                    let mut oreg = BinaryAccumulator::new(config.acc_width());
                    oreg.add(counts[(p * tile_rows + r) * tile_cols + c]);
                    oreg.add(partial);
                    if oreg.saturated() {
                        stats.saturation_events += 1;
                    }
                    partial = oreg.drain();
                }
                out[(p, n0 + c)] += partial;
            }
            stats.mac_windows += (tile_rows * tile_cols) as u64;
            stats.compute_cycles += tile_rows as u64 * config.mac_cycles();
        }
    }

    // Top-row shifters: scale the n-bit partial sums back to N bits
    // (the shift is linear, so once after the fold equals per-drain).
    for v in out.as_mut_slice() {
        *v = et.scale(*v);
    }
    usystolic_obs::with(|o| o.metrics.count("core.packed_windows", stats.mac_windows));
    record_kernel_stats(&stats);
    Ok((out, stats))
}

/// Runs a lowered GEMM through the uGEMM-H model: bipolar uMUL directly on
/// signed data (no sign-magnitude split), rate coding, binary
/// accumulation.
///
/// Costs `2^N` multiply cycles per MAC window and two conditional
/// generators per row (Section IV-C2); the per-window contribution is the
/// bipolar ±1 sum `S ≈ w·i / 2^(N-2)`, evaluated through the word-packed
/// split of [`crate::kernel::PackedHybridTileKernel`] — the window's ±1
/// walk lands in a plain integer here (the OREG only sees the finished
/// window sum), so the packed evaluation is bit-exact at any accumulator
/// width.
///
/// # Errors
///
/// Returns [`CoreError::Shape`] for mismatched matrices and
/// [`CoreError::Config`] if the configuration's scheme is not
/// [`ComputingScheme::UGemmHybrid`].
pub fn ugemm_h_gemm(
    config: &SystolicConfig,
    gemm: &GemmConfig,
    input: &Matrix<i64>,
    weights: &Matrix<i64>,
) -> Result<(Matrix<i64>, ExecStats), CoreError> {
    if config.scheme() != ComputingScheme::UGemmHybrid {
        return Err(CoreError::Config(format!(
            "ugemm_h_gemm does not execute {}",
            config.scheme()
        )));
    }
    check_lowered(gemm, input, weights)?;

    let map = TileMapping::new(gemm, config.rows(), config.cols());
    let (m, n) = (map.m(), map.n());
    let bitwidth = config.bitwidth();
    let half = 1i64 << (bitwidth - 1);

    let mut accs: Vec<BinaryAccumulator> = (0..m * n)
        .map(|_| BinaryAccumulator::new(config.acc_width()))
        .collect();
    let mut stats = ExecStats::default();

    for cf in 0..map.col_folds() {
        let n0 = cf * config.cols();
        let tile_cols = map.cols_in_fold(cf);
        for rf in 0..map.row_folds() {
            let k0 = rf * config.rows();
            let tile_rows = map.rows_in_fold(rf);
            let mut tile_t0 = 0.0;
            usystolic_obs::with(|o| tile_t0 = o.tracer.now_us());
            // The tile's stationary weights as bipolar thresholds, packed
            // once into ones-/zeros-phase comparator words for all M
            // windows.
            let w_thr: Vec<Vec<u64>> = (0..tile_rows)
                .map(|r| {
                    (0..tile_cols)
                        .map(|c| {
                            let w = weights[(k0 + r, n0 + c)].clamp(-half, half);
                            (w + half) as u64
                        })
                        .collect()
                })
                .collect();
            let mut kernel = crate::kernel::PackedHybridTileKernel::new(bitwidth, &w_thr);
            for p in 0..m {
                for r in 0..tile_rows {
                    let i_level = input[(p, k0 + r)].clamp(-half, half);
                    let i_threshold = (i_level + half) as u64;
                    for c in 0..tile_cols {
                        accs[p * n + n0 + c].add(kernel.window_sum(r, c, i_threshold));
                    }
                    stats.mac_windows += tile_cols as u64;
                    stats.compute_cycles += config.mac_cycles();
                }
            }
            record_tile("ugemm_h", cf, rf, tile_rows, tile_cols, tile_t0);
        }
    }

    let mut out = Matrix::<i64>::zeros(m, n);
    for p in 0..m {
        for c in 0..n {
            let acc = &accs[p * n + c];
            if acc.saturated() {
                stats.saturation_events += 1;
            }
            out[(p, c)] = acc.value();
        }
    }
    record_kernel_stats(&stats);
    Ok((out, stats))
}

impl usystolic_obs::ToJson for ExecStats {
    fn to_json(&self) -> usystolic_obs::JsonValue {
        usystolic_obs::JsonValue::object(vec![
            ("mac_windows", self.mac_windows.to_json()),
            ("saturation_events", self.saturation_events.to_json()),
            ("compute_cycles", self.compute_cycles.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usystolic_gemm::im2col;
    use usystolic_gemm::{FeatureMap, WeightSet};

    fn lowered_case(seedi: i64, seedw: i64) -> (GemmConfig, Matrix<i64>, Matrix<i64>, Matrix<i64>) {
        let gemm = GemmConfig::conv(4, 4, 2, 2, 2, 1, 3).unwrap();
        let input = FeatureMap::from_fn(4, 4, 2, |h, w, c| {
            ((h as i64 * 37 + w as i64 * 11 + c as i64 * 5 + seedi) % 257) - 128
        });
        let weights = WeightSet::from_fn(3, 2, 2, 2, |oc, wh, ww, ic| {
            ((oc as i64 * 53 + wh as i64 * 17 + ww as i64 * 7 + ic as i64 * 3 + seedw) % 257) - 128
        });
        let li = im2col::lower_input(&gemm, &input).unwrap();
        let lw = im2col::lower_weights(&gemm, &weights).unwrap();
        // Exact integer product for reference.
        let mut exact = Matrix::<i64>::zeros(li.rows(), lw.cols());
        for p in 0..li.rows() {
            for c in 0..lw.cols() {
                let mut s = 0i64;
                for k in 0..li.cols() {
                    s += li[(p, k)] * lw[(k, c)];
                }
                exact[(p, c)] = s;
            }
        }
        (gemm, li, lw, exact)
    }

    #[test]
    fn unary_rate_tracks_exact_product() {
        let (gemm, li, lw, exact) = lowered_case(1, 2);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8).unwrap();
        let (out, stats) = unary_gemm(&cfg, &gemm, &li, &lw).unwrap();
        assert_eq!(stats.saturation_events, 0);
        assert!(stats.mac_windows > 0);
        // Output is in the 2^(N-1)-divided domain: out ≈ exact / 128.
        for p in 0..out.rows() {
            for c in 0..out.cols() {
                let expect = exact[(p, c)] as f64 / 128.0;
                let err = (out[(p, c)] as f64 - expect).abs();
                // K = 8 terms, each within ±1 count.
                assert!(err <= 8.0, "({p},{c}): {} vs {expect}", out[(p, c)]);
            }
        }
    }

    #[test]
    fn unary_temporal_tracks_exact_product() {
        let (gemm, li, lw, exact) = lowered_case(3, 4);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryTemporal, 8).unwrap();
        let (out, _) = unary_gemm(&cfg, &gemm, &li, &lw).unwrap();
        for p in 0..out.rows() {
            for c in 0..out.cols() {
                let expect = exact[(p, c)] as f64 / 128.0;
                assert!(
                    (out[(p, c)] as f64 - expect).abs() <= 10.0,
                    "({p},{c}): {} vs {expect}",
                    out[(p, c)]
                );
            }
        }
    }

    #[test]
    fn early_termination_preserves_scale() {
        let (gemm, li, lw, exact) = lowered_case(5, 6);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8)
            .unwrap()
            .with_effective_bitwidth(6)
            .unwrap();
        let (out, _) = unary_gemm(&cfg, &gemm, &li, &lw).unwrap();
        for p in 0..out.rows() {
            for c in 0..out.cols() {
                let expect = exact[(p, c)] as f64 / 128.0;
                // Coarser: counts quantised to 4-count steps by the shift,
                // and per-term variance grows with the shorter window.
                assert!(
                    (out[(p, c)] as f64 - expect).abs() <= 48.0,
                    "({p},{c}): {} vs {expect}",
                    out[(p, c)]
                );
            }
        }
    }

    #[test]
    fn fold_boundaries_do_not_change_results() {
        let (gemm, li, lw, _) = lowered_case(7, 8);
        let big = SystolicConfig::new(8, 3, ComputingScheme::UnaryRate, 8).unwrap();
        let small = SystolicConfig::new(3, 2, ComputingScheme::UnaryRate, 8).unwrap();
        let (a, _) = unary_gemm(&big, &gemm, &li, &lw).unwrap();
        let (b, _) = unary_gemm(&small, &gemm, &li, &lw).unwrap();
        assert_eq!(a, b, "tiling must be value-preserving");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // The parallel tile sweep folds counts in the serial order, so the
        // output and the (order-sensitive) saturation stats are identical
        // for every worker count — including with a clamping accumulator.
        let (gemm, li, lw, _) = lowered_case(15, 16);
        for acc_width in [32u32, 4] {
            for scheme in [ComputingScheme::UnaryRate, ComputingScheme::UnaryTemporal] {
                let cfg = SystolicConfig::new(3, 2, scheme, 8)
                    .unwrap()
                    .with_acc_width(acc_width);
                let (one, one_stats) = unary_gemm_workers(&cfg, &gemm, &li, &lw, 1).unwrap();
                for workers in [2usize, 3, 8] {
                    let (many, many_stats) =
                        unary_gemm_workers(&cfg, &gemm, &li, &lw, workers).unwrap();
                    assert_eq!(one, many, "{scheme} acc {acc_width} workers {workers}");
                    assert_eq!(one_stats, many_stats, "{scheme} workers {workers}");
                }
            }
        }
    }

    #[test]
    fn narrow_accumulator_saturates_and_reports() {
        let (gemm, li, lw, _) = lowered_case(9, 10);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8)
            .unwrap()
            .with_acc_width(4);
        let (_, stats) = unary_gemm(&cfg, &gemm, &li, &lw).unwrap();
        assert!(stats.saturation_events > 0);
    }

    #[test]
    fn ugemm_h_tracks_exact_product() {
        let (gemm, li, lw, exact) = lowered_case(11, 12);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UGemmHybrid, 8).unwrap();
        let (out, stats) = ugemm_h_gemm(&cfg, &gemm, &li, &lw).unwrap();
        assert!(stats.mac_windows > 0);
        for p in 0..out.rows() {
            for c in 0..out.cols() {
                // uGEMM-H output is in the 2^(N-2)-divided domain.
                let expect = exact[(p, c)] as f64 / 64.0;
                assert!(
                    (out[(p, c)] as f64 - expect).abs() <= 24.0,
                    "({p},{c}): {} vs {expect}",
                    out[(p, c)]
                );
            }
        }
    }

    #[test]
    fn scheme_mismatch_is_rejected() {
        let (gemm, li, lw, _) = lowered_case(1, 1);
        let bp = SystolicConfig::new(4, 3, ComputingScheme::BinaryParallel, 8).unwrap();
        assert!(unary_gemm(&bp, &gemm, &li, &lw).is_err());
        let ur = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8).unwrap();
        assert!(ugemm_h_gemm(&ur, &gemm, &li, &lw).is_err());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let (gemm, li, _, _) = lowered_case(1, 1);
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8).unwrap();
        let bad_w = Matrix::<i64>::zeros(3, 3);
        assert!(unary_gemm(&cfg, &gemm, &li, &bad_w).is_err());
        let bad_i = Matrix::<i64>::zeros(2, 2);
        let lw = Matrix::<i64>::zeros(8, 3);
        assert!(unary_gemm(&cfg, &gemm, &bad_i, &lw).is_err());
    }
}
