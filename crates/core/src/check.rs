//! Differential checking utilities: run one random GEMM through every
//! computing scheme and verify each against the exact reference within
//! its scheme-specific tolerance.
//!
//! Exposed as a public API (not just a test) so downstream users who
//! extend a scheme can fuzz their changes the same way this repository
//! does.

use crate::config::SystolicConfig;
use crate::exec::GemmExecutor;
use crate::scheme::ComputingScheme;
use crate::CoreError;
use usystolic_gemm::loopnest::gemm_reference;
use usystolic_gemm::stats::ErrorStats;
use usystolic_gemm::{FeatureMap, GemmConfig, WeightSet};

/// Result of one differential check.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeCheck {
    /// The scheme checked.
    pub scheme: ComputingScheme,
    /// RMS error against the f64 reference.
    pub rmse: f64,
    /// The tolerance the scheme was held to.
    pub tolerance: f64,
    /// Whether the scheme passed.
    pub passed: bool,
}

/// The per-scheme error tolerance, as a fraction of the reference value
/// scale: binary schemes see only quantisation error; unary schemes add
/// bounded bitstream variance; uGEMM-H doubles it (coarser ±1 steps).
#[must_use]
pub fn tolerance_for(scheme: ComputingScheme, bitwidth: u32) -> f64 {
    let quant = 1.0 / (1u64 << (bitwidth - 1)) as f64;
    match scheme {
        ComputingScheme::BinaryParallel | ComputingScheme::BinarySerial => 4.0 * quant,
        ComputingScheme::UnaryRate | ComputingScheme::UnaryTemporal => 24.0 * quant,
        ComputingScheme::UGemmHybrid => 48.0 * quant,
    }
}

/// Runs one seeded random GEMM through every scheme on a small array and
/// reports each scheme's error against the reference.
///
/// # Errors
///
/// Propagates configuration/execution errors (which would themselves be
/// bugs for the in-range inputs this generates).
pub fn differential_check(seed: u64, bitwidth: u32) -> Result<Vec<SchemeCheck>, CoreError> {
    // Derive a small GEMM shape and tensors from the seed with the shared
    // SplitMix64 (the +golden-ratio offset keeps the historical stream).
    let mut rng = usystolic_unary::rng::SplitMix64::new(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    let mut next = move || rng.next_u64();
    let dim = |lo: usize, hi: usize, v: u64| lo + (v as usize) % (hi - lo + 1);
    let ih = dim(3, 8, next());
    let iw = dim(3, 8, next());
    let ic = dim(1, 4, next());
    let wh = dim(1, ih.min(3), next());
    let ww = dim(1, iw.min(3), next());
    let oc = dim(1, 5, next());
    let gemm = GemmConfig::conv(ih, iw, ic, wh, ww, 1, oc)?;

    let mut val = move || (next() % 2001) as f64 / 1000.0 - 1.0;
    let input = FeatureMap::from_fn(ih, iw, ic, |_, _, _| val());
    let weights = WeightSet::from_fn(oc, wh, ww, ic, |_, _, _, _| val() * 0.5);
    let reference = gemm_reference(&gemm, &input, &weights)?;
    let scale = reference
        .as_slice()
        .iter()
        .fold(0.0f64, |m, &x| m.max(x.abs()))
        .max(1e-9);

    let mut out = Vec::with_capacity(ComputingScheme::ALL.len());
    for scheme in ComputingScheme::ALL {
        let cfg = SystolicConfig::new(
            dim(2, 6, seed ^ 0x55),
            dim(2, 6, seed ^ 0xAA),
            scheme,
            bitwidth,
        )
        .map_err(|e| CoreError::Config(e.to_string()))?;
        let outcome = GemmExecutor::new(cfg).execute(&gemm, &input, &weights)?;
        let rmse =
            ErrorStats::compare(reference.as_slice(), outcome.output.as_slice())?.rmse() / scale;
        let tolerance = tolerance_for(scheme, bitwidth);
        out.push(SchemeCheck {
            scheme,
            rmse,
            tolerance,
            passed: rmse <= tolerance,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_seeds_pass_for_8bit() {
        for seed in 0..24u64 {
            let checks = differential_check(seed, 8).expect("check runs");
            assert_eq!(checks.len(), 5);
            for c in &checks {
                assert!(
                    c.passed,
                    "seed {seed} {}: rmse {} > tolerance {}",
                    c.scheme, c.rmse, c.tolerance
                );
            }
        }
    }

    #[test]
    fn tolerances_rank_schemes() {
        assert!(
            tolerance_for(ComputingScheme::BinaryParallel, 8)
                < tolerance_for(ComputingScheme::UnaryRate, 8)
        );
        assert!(
            tolerance_for(ComputingScheme::UnaryRate, 8)
                < tolerance_for(ComputingScheme::UGemmHybrid, 8)
        );
        // Tighter data → tighter tolerance.
        assert!(
            tolerance_for(ComputingScheme::UnaryRate, 12)
                < tolerance_for(ComputingScheme::UnaryRate, 8)
        );
    }

    #[test]
    fn checks_are_deterministic() {
        let a = differential_check(7, 8).expect("check runs");
        let b = differential_check(7, 8).expect("check runs");
        assert_eq!(a, b);
    }
}
