//! Cycle-level uSystolic processing elements with spatial-temporal
//! bitstream reuse (Fig. 7 of the paper).
//!
//! One [`UnaryRow`] models a full row of the array processing a single
//! IFM element against the row's stationary weights for one MAC window:
//!
//! * the **leftmost PE** holds the IFM in sign-magnitude form (IABS /
//!   ISIGN), generates the IFM bit by comparing IABS against its RNG or
//!   CNT (comparator C-I), and conditionally advances the weight RNG —
//!   the C-BSG of Fig. 4;
//! * every **inner PE** receives the IFM bit through a one-cycle delay
//!   flip-flop (IDFF) and the weight random number through a one-cycle
//!   delay register (RREG), so both are generated *once* and reused
//!   spatially and temporally along the row (Eq. 3);
//! * each PE compares the (delayed) random number against its own weight
//!   magnitude (comparator C-W), ANDs with the (delayed) IFM bit and
//!   accumulates ±1 into its OREG according to `WSIGN ⊕ ISIGN`.
//!
//! Because column `c` sees exactly the sequence column `0` saw, lagged by
//! `c` cycles, the zero-SCC condition established at the leftmost column
//! holds at every column (Eq. 4) — the row-level simulation verifies this
//! bit-for-bit in its tests.

use usystolic_unary::coding::Coding;
use usystolic_unary::packed;
use usystolic_unary::rng::{CounterSource, NumberSource, SobolSource};
use usystolic_unary::sign::SignMagnitude;

/// The IFM bitstream source of a leftmost PE: an RNG for rate coding or a
/// counter for temporal coding (the `RNG/CNT` block of Fig. 7).
#[derive(Debug, Clone)]
pub enum IfmSource {
    /// Rate coding through a Sobol generator.
    Rate(SobolSource),
    /// Temporal coding through a counter.
    Temporal(CounterSource),
}

impl IfmSource {
    /// Creates the source for the given coding at `bitwidth`-bit data
    /// (`bitwidth − 1` comparator bits).
    ///
    /// Rate coding uses Sobol dimension 1, keeping it independent of the
    /// weight RNG (dimension 0) so the leftmost column satisfies the
    /// zero-SCC precondition of Eq. 2.
    #[must_use]
    pub fn for_coding(coding: Coding, bitwidth: u32) -> Self {
        match coding {
            Coding::Rate => IfmSource::Rate(SobolSource::dimension(1, bitwidth - 1)),
            Coding::Temporal => IfmSource::Temporal(CounterSource::new(bitwidth - 1)),
        }
    }
}

impl NumberSource for IfmSource {
    fn next(&mut self) -> u64 {
        match self {
            IfmSource::Rate(s) => s.next(),
            IfmSource::Temporal(s) => s.next(),
        }
    }

    fn width(&self) -> u32 {
        match self {
            IfmSource::Rate(s) => s.width(),
            IfmSource::Temporal(s) => s.width(),
        }
    }

    fn reset(&mut self) {
        match self {
            IfmSource::Rate(s) => s.reset(),
            IfmSource::Temporal(s) => s.reset(),
        }
    }
}

/// A cycle-level row of uSystolic PEs sharing one IFM element, with
/// spatial-temporal bitstream reuse between columns.
///
/// # Example
///
/// ```
/// use usystolic_core::UnaryRow;
/// use usystolic_unary::coding::Coding;
/// use usystolic_unary::SignMagnitude;
///
/// // One row, three stationary weights, one IFM element of -77/128.
/// let mut row = UnaryRow::new(
///     8,
///     SignMagnitude::from_signed(-77, 8),
///     vec![
///         SignMagnitude::from_signed(100, 8),
///         SignMagnitude::from_signed(-100, 8),
///         SignMagnitude::from_signed(50, 8),
///     ],
///     Coding::Rate,
/// );
/// let counts = row.run_fast(128);
/// // Signs follow WSIGN xor ISIGN; magnitudes track |I||W|/128.
/// assert!(counts[0] < 0 && counts[1] > 0 && counts[2] < 0);
/// ```
#[derive(Debug, Clone)]
pub struct UnaryRow {
    bitwidth: u32,
    ifm: SignMagnitude,
    ifm_src: IfmSource,
    weight_rng: SobolSource,
    weights: Vec<SignMagnitude>,
    /// IDFF chain: `idff[c]` feeds column `c + 1`.
    idff: Vec<bool>,
    /// RREG chain: `rreg[c]` feeds column `c + 1`.
    rreg: Vec<u64>,
    last_r: u64,
    counts: Vec<i64>,
    cycle: u64,
}

impl UnaryRow {
    /// Creates a row with the given stationary weights (one per column),
    /// processing `ifm` under `coding` at `bitwidth`-bit data.
    ///
    /// The weight RNG is Sobol dimension 0 for every row of the array —
    /// "applying the same RNG to all rows … achieve\[s\] an identical
    /// accuracy level throughout all PEs" (Section III-B).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any magnitude exceeds
    /// `2^(bitwidth-1)`.
    #[must_use]
    pub fn new(
        bitwidth: u32,
        ifm: SignMagnitude,
        weights: Vec<SignMagnitude>,
        coding: Coding,
    ) -> Self {
        assert!(!weights.is_empty(), "a row needs at least one column");
        let max = usystolic_unary::stream_len(bitwidth);
        assert!(ifm.magnitude <= max, "IFM magnitude exceeds range");
        for w in &weights {
            assert!(w.magnitude <= max, "weight magnitude exceeds range");
        }
        let cols = weights.len();
        Self {
            bitwidth,
            ifm,
            ifm_src: IfmSource::for_coding(coding, bitwidth),
            weight_rng: SobolSource::dimension(0, bitwidth - 1),
            weights,
            idff: vec![false; cols.saturating_sub(1)],
            rreg: vec![0; cols.saturating_sub(1)],
            last_r: 0,
            counts: vec![0; cols],
            cycle: 0,
        }
    }

    /// Number of columns in the row.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.weights.len()
    }

    /// Advances the row by one clock cycle, returning the per-column
    /// product bits of this cycle (column `c`'s bit reflects the IFM bit
    /// generated `c` cycles ago).
    pub fn step(&mut self) -> Vec<bool> {
        // Leftmost PE: comparator C-I generates the IFM bit; the weight
        // RNG advances only when it is set (C-BSG).
        let e0 = self.ifm_src.next() < self.ifm.magnitude;
        if e0 {
            self.last_r = self.weight_rng.next();
        }
        let r0 = self.last_r;

        let cols = self.cols();
        let mut bits = Vec::with_capacity(cols);
        // Column 0 consumes (e0, r0) directly.
        bits.push(e0 && r0 < self.weights[0].magnitude);
        // Inner columns consume the delayed chain values.
        for c in 1..cols {
            let e = self.idff[c - 1];
            let r = self.rreg[c - 1];
            bits.push(e && r < self.weights[c].magnitude);
        }
        // Shift the delay chains right by one PE.
        for c in (1..cols.saturating_sub(1)).rev() {
            self.idff[c] = self.idff[c - 1];
            self.rreg[c] = self.rreg[c - 1];
        }
        if cols > 1 {
            self.idff[0] = e0;
            self.rreg[0] = r0;
        }
        self.cycle += 1;
        bits
    }

    /// Runs one full MAC window of `mul_cycles` multiply cycles per
    /// column, faithfully stepping the pipeline: the window is drained for
    /// `cols − 1` extra cycles so that every column observes the complete
    /// bit sequence (the systolic skew of the array). Product bits are
    /// accumulated as ±1 into the per-column counts according to the sign
    /// XOR.
    ///
    /// Returns the per-column signed counts.
    pub fn run(&mut self, mul_cycles: u64) -> &[i64] {
        let cols = self.cols() as u64;
        let total = mul_cycles + cols - 1;
        for cycle in 0..total {
            let bits = self.step();
            for (c, bit) in bits.iter().enumerate() {
                // Column c's window spans cycles [c, c + mul_cycles).
                let c64 = c as u64;
                if *bit && cycle >= c64 && cycle < c64 + mul_cycles {
                    self.counts[c] += self.ifm.product_increment(self.weights[c]);
                }
            }
        }
        &self.counts
    }

    /// Computes the same per-column counts as [`run`](Self::run) without
    /// simulating the delay pipeline — exploiting the equivalence of Eq. 3
    /// (the delayed sequence is the original sequence). Used by the
    /// array-level executor for speed; `tests::fast_path_matches_pipeline`
    /// proves the equivalence.
    pub fn run_fast(&mut self, mul_cycles: u64) -> &[i64] {
        for _ in 0..mul_cycles {
            let e = self.ifm_src.next() < self.ifm.magnitude;
            if !e {
                continue;
            }
            let r = self.weight_rng.next();
            for (c, w) in self.weights.iter().enumerate() {
                if r < w.magnitude {
                    self.counts[c] += self.ifm.product_increment(*w);
                }
            }
        }
        &self.counts
    }

    /// Computes the same per-column counts as [`run`](Self::run) and
    /// [`run_fast`](Self::run_fast) word-at-a-time: the IFM comparator and
    /// the per-column weight comparators are evaluated over precomputed
    /// source sequences packed 64 bits per word
    /// ([`usystolic_unary::packed`]), so each column's window collapses to
    /// one popcount instead of `mul_cycles` scalar iterations.
    ///
    /// The C-BSG gating (weight RNG advances only on enabled cycles)
    /// becomes a prefix length: after the window, exactly
    /// `popcount(enable)` RNG outputs have been consumed, and the column
    /// count is the prefix popcount of its weight comparator stream.
    /// Within one window every increment of a column carries the same sign
    /// (`ISIGN ⊕ WSIGN` is per-window constant), so the lump add is
    /// bit-exact. `tests::packed_path_matches_pipeline_and_fast` proves
    /// equivalence against both reference paths.
    pub fn run_packed(&mut self, mul_cycles: u64) -> &[i64] {
        let seq_i = packed::sequence(&mut self.ifm_src, mul_cycles);
        let enable = packed::comparator_stream(&seq_i, self.ifm.magnitude);
        let n_en = enable.count_ones();
        let seq_w = packed::sequence(&mut self.weight_rng, n_en);
        for (c, w) in self.weights.iter().enumerate() {
            let ones = packed::comparator_stream(&seq_w, w.magnitude).count_ones();
            self.counts[c] += self.ifm.product_increment(*w) * ones as i64;
        }
        &self.counts
    }

    /// Per-column signed counts accumulated so far.
    #[must_use]
    pub fn counts(&self) -> &[i64] {
        &self.counts
    }

    /// Cycles stepped so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Data bitwidth.
    #[must_use]
    pub fn bitwidth(&self) -> u32 {
        self.bitwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm(v: i64) -> SignMagnitude {
        SignMagnitude::from_signed(v, 8)
    }

    #[test]
    fn single_column_matches_umul() {
        // One column is exactly the uMUL of Fig. 4.
        let mut row = UnaryRow::new(8, sm(77), vec![sm(100)], Coding::Rate);
        let counts = row.run(128).to_vec();
        let exact = 77.0 * 100.0 / 128.0;
        assert!(
            (counts[0] as f64 - exact).abs() <= 1.0,
            "{} vs {exact}",
            counts[0]
        );
    }

    #[test]
    fn every_column_is_equally_accurate() {
        // Eq. 4: all columns obey the same SCC constraint, so each column's
        // product is as accurate as the leftmost one.
        let weights: Vec<i64> = vec![100, 3, 77, 128, 55, 90, 13, 42];
        let ws: Vec<SignMagnitude> = weights.iter().map(|&w| sm(w)).collect();
        let mut row = UnaryRow::new(8, sm(111), ws, Coding::Rate);
        let counts = row.run(128).to_vec();
        for (c, &w) in weights.iter().enumerate() {
            let exact = 111.0 * w as f64 / 128.0;
            // Low-discrepancy bound: within ~2 counts of the exact product
            // at every column — no degradation away from the leftmost PE.
            assert!(
                (counts[c] as f64 - exact).abs() <= 2.5,
                "col {c}: {} vs {exact}",
                counts[c]
            );
        }
    }

    #[test]
    fn fast_path_matches_pipeline() {
        for ifm in [0i64, 1, -77, 111, 128, -128] {
            let weights: Vec<SignMagnitude> =
                [100, -3, 77, 0, -128, 55].iter().map(|&w| sm(w)).collect();
            let mut slow = UnaryRow::new(8, sm(ifm), weights.clone(), Coding::Rate);
            let mut fast = UnaryRow::new(8, sm(ifm), weights.clone(), Coding::Rate);
            let mut packed = UnaryRow::new(8, sm(ifm), weights, Coding::Rate);
            let reference = slow.run(128).to_vec();
            assert_eq!(reference, fast.run_fast(128).to_vec(), "ifm {ifm}");
            assert_eq!(reference, packed.run_packed(128).to_vec(), "ifm {ifm}");
        }
    }

    #[test]
    fn fast_path_matches_pipeline_temporal() {
        let weights: Vec<SignMagnitude> = [64, -100, 17].iter().map(|&w| sm(w)).collect();
        let mut slow = UnaryRow::new(8, sm(-90), weights.clone(), Coding::Temporal);
        let mut fast = UnaryRow::new(8, sm(-90), weights.clone(), Coding::Temporal);
        let mut packed = UnaryRow::new(8, sm(-90), weights, Coding::Temporal);
        let reference = slow.run(128).to_vec();
        assert_eq!(reference, fast.run_fast(128).to_vec());
        assert_eq!(reference, packed.run_packed(128).to_vec());
    }

    #[test]
    fn fast_path_matches_pipeline_early_terminated() {
        let weights: Vec<SignMagnitude> = [100, 50, -25, 127].iter().map(|&w| sm(w)).collect();
        let mut slow = UnaryRow::new(8, sm(99), weights.clone(), Coding::Rate);
        let mut fast = UnaryRow::new(8, sm(99), weights.clone(), Coding::Rate);
        let mut packed = UnaryRow::new(8, sm(99), weights, Coding::Rate);
        let reference = slow.run(32).to_vec();
        assert_eq!(reference, fast.run_fast(32).to_vec());
        assert_eq!(reference, packed.run_packed(32).to_vec());
    }

    #[test]
    fn packed_path_matches_pipeline_and_fast() {
        // All three contenders over non-square rows (cols ≠ typical tile
        // widths, including a single-column row) and the full EBT sweep of
        // multiply-cycle counts 2^0 .. 2^(N-1).
        for coding in [Coding::Rate, Coding::Temporal] {
            for cols in [1usize, 3, 6] {
                let weights: Vec<SignMagnitude> = [100, -3, 77, 0, -128, 55][..cols]
                    .iter()
                    .map(|&w| sm(w))
                    .collect();
                for mul in [1u64, 2, 4, 8, 16, 32, 64, 128] {
                    let mut slow = UnaryRow::new(8, sm(-111), weights.clone(), coding);
                    let mut fast = UnaryRow::new(8, sm(-111), weights.clone(), coding);
                    let mut packed = UnaryRow::new(8, sm(-111), weights.clone(), coding);
                    let reference = slow.run(mul).to_vec();
                    assert_eq!(
                        reference,
                        fast.run_fast(mul).to_vec(),
                        "{coding:?} cols {cols} mul {mul}"
                    );
                    assert_eq!(
                        reference,
                        packed.run_packed(mul).to_vec(),
                        "{coding:?} cols {cols} mul {mul}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_path_accumulates_across_windows() {
        // Consecutive windows on one row: the RNG state carried between
        // windows must match the bit-serial path.
        let weights: Vec<SignMagnitude> = [90, -70].iter().map(|&w| sm(w)).collect();
        let mut fast = UnaryRow::new(8, sm(101), weights.clone(), Coding::Rate);
        let mut packed = UnaryRow::new(8, sm(101), weights, Coding::Rate);
        for _ in 0..3 {
            fast.run_fast(32);
            packed.run_packed(32);
        }
        assert_eq!(fast.counts().to_vec(), packed.counts().to_vec());
    }

    #[test]
    fn signs_steer_accumulation() {
        // (-I) × (+W) accumulates negatively; (-I) × (-W) positively.
        let mut row = UnaryRow::new(8, sm(-77), vec![sm(100), sm(-100)], Coding::Rate);
        let counts = row.run(128).to_vec();
        assert!(counts[0] < 0);
        assert!(counts[1] > 0);
        assert_eq!(counts[0], -counts[1]);
    }

    #[test]
    fn zero_operands_produce_zero() {
        let mut row = UnaryRow::new(8, sm(0), vec![sm(100)], Coding::Rate);
        assert_eq!(row.run(128)[0], 0);
        let mut row = UnaryRow::new(8, sm(100), vec![sm(0)], Coding::Rate);
        assert_eq!(row.run(128)[0], 0);
    }

    #[test]
    fn full_scale_product_is_exact() {
        // 128/128 × 128/128 = 1.0 → count = 128 exactly.
        let mut row = UnaryRow::new(8, sm(128), vec![sm(128)], Coding::Rate);
        assert_eq!(row.run(128)[0], 128);
    }

    #[test]
    fn early_termination_scales_counts() {
        // With 32 of 128 cycles, the count lands in the 6-bit domain:
        // ≈ |I|·|W| / 128 / 4.
        let mut row = UnaryRow::new(8, sm(120), vec![sm(120)], Coding::Rate);
        let c = row.run(32)[0];
        let exact_full = 120.0 * 120.0 / 128.0;
        assert!(
            ((c * 4) as f64 - exact_full).abs() <= 4.0 + exact_full * 0.05,
            "scaled {} vs {exact_full}",
            c * 4
        );
    }

    #[test]
    fn temporal_coding_is_accurate_without_et() {
        let weights: Vec<SignMagnitude> = [100, -3, 77].iter().map(|&w| sm(w)).collect();
        let mut row = UnaryRow::new(8, sm(111), weights, Coding::Temporal);
        let counts = row.run(128).to_vec();
        for (c, w) in [100i64, -3, 77].iter().enumerate() {
            let exact = 111.0 * *w as f64 / 128.0;
            assert!(
                (counts[c] as f64 - exact).abs() <= 1.5,
                "col {c}: {} vs {exact}",
                counts[c]
            );
        }
    }

    #[test]
    fn step_returns_one_bit_per_column() {
        let mut row = UnaryRow::new(8, sm(64), vec![sm(64); 5], Coding::Rate);
        assert_eq!(row.step().len(), 5);
        assert_eq!(row.cycle(), 1);
        assert_eq!(row.cols(), 5);
        assert_eq!(row.bitwidth(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_row_rejected() {
        let _ = UnaryRow::new(8, sm(0), vec![], Coding::Rate);
    }
}
