//! The headline mechanism: bytes *crawl* out of DRAM.
//!
//! Sweeps the MAC cycle count of a rate-coded uSystolic edge array on an
//! AlexNet conv layer and an FC layer, with and without on-chip SRAM, and
//! prints the resulting DRAM bandwidth, runtime overhead and on-chip
//! area — showing why uSystolic can delete its SRAM while the binary
//! designs cannot (Sections III-E and V-B).
//!
//! ```sh
//! cargo run --release --example crawling_bytes
//! ```

use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::gemm::GemmConfig;
use usystolic::hw::OnChipArea;
use usystolic::sim::{MemoryHierarchy, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conv2 = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256)?; // AlexNet Conv2
    let fc6 = GemmConfig::matmul(1, 9216, 4096)?; // AlexNet FC6

    println!(
        "{:<24} {:>6} {:>14} {:>14} {:>12} {:>12}",
        "design", "SRAM", "conv2 GB/s", "fc6 GB/s", "stall %", "area mm2"
    );

    let show = |name: &str, config: SystolicConfig, memory: MemoryHierarchy| {
        let sim = Simulator::new(config, memory);
        let rc = sim.simulate(&conv2);
        let rf = sim.simulate(&fc6);
        let area = OnChipArea::for_config(&config, &memory);
        println!(
            "{:<24} {:>6} {:>14.3} {:>14.3} {:>12.1} {:>12.3}",
            name,
            if memory.has_sram() { "yes" } else { "no" },
            rc.dram_bandwidth_gbps,
            rf.dram_bandwidth_gbps,
            100.0 * rc.timing.overhead(),
            area.total_mm2(),
        );
    };

    for (memory, tag) in [
        (MemoryHierarchy::edge_with_sram(), "with SRAM"),
        (MemoryHierarchy::no_sram(), "no SRAM"),
    ] {
        show(
            &format!("Binary Parallel {tag}"),
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            memory,
        );
    }
    for cycles in [32u64, 64, 128] {
        show(
            &format!("uSystolic rate {cycles}c"),
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_mul_cycles(cycles)?,
            MemoryHierarchy::no_sram(),
        );
    }
    show(
        "uGEMM-H 256c",
        SystolicConfig::edge(ComputingScheme::UGemmHybrid, 8),
        MemoryHierarchy::no_sram(),
    );

    println!("\nBinary parallel without SRAM demands ~10 GB/s of DRAM; uSystolic");
    println!("runs the same layers on crawling bytes (< 1 GB/s) with no SRAM at all.");
    Ok(())
}
