//! System-level trade-offs (Section V-H): multi-instance scaling at the
//! shared-DRAM memory wall, and battery lifetime under early termination.
//!
//! ```sh
//! cargo run --release --example system_tradeoffs
//! ```

use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::gemm::GemmConfig;
use usystolic::hw::LayerEnergy;
use usystolic::models::zoo::alexnet;
use usystolic::sim::{battery_lifetime, MemoryHierarchy, MultiInstanceSystem, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256)?; // AlexNet Conv2

    // Part 1: how many instances can share one DRAM before the memory
    // wall? (Paper: "uSystolic's low bandwidth empowers better
    // scalability.")
    println!("multi-instance scaling on one shared DRAM (AlexNet Conv2, edge arrays):\n");
    println!(
        "{:<24} {:>10} {:>14} {:>12}",
        "design", "instances", "agg. layers/s", "efficiency"
    );
    let designs = [
        (
            "Binary Parallel",
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
        ),
        (
            "uSystolic rate 32c",
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_mul_cycles(32)?,
        ),
        (
            "uSystolic rate 128c",
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_mul_cycles(128)?,
        ),
    ];
    for (name, cfg) in designs {
        let sys = MultiInstanceSystem::new(cfg, MemoryHierarchy::no_sram());
        for n in [1usize, 4, 16, 64] {
            let r = sys.scale(&layer, n);
            println!(
                "{:<24} {:>10} {:>14.1} {:>11.0}%{}",
                name,
                n,
                r.aggregate_throughput,
                100.0 * r.scaling_efficiency,
                if r.dram_limited {
                    "  <- memory wall"
                } else {
                    ""
                }
            );
        }
        println!();
    }

    // Part 2: battery lifetime — a 100 J budget running full AlexNet
    // passes, on-chip energy only (the battery scenario of §V-H).
    println!("battery lifetime for a 100 J on-chip budget (8-bit AlexNet):\n");
    println!(
        "{:<24} {:>14} {:>14}",
        "design", "inferences", "lifetime (s)"
    );
    for cycles in [32u64, 64, 128] {
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_mul_cycles(cycles)?;
        let mem = MemoryHierarchy::no_sram();
        let sim = Simulator::new(cfg, mem);
        let (mut energy, mut runtime) = (0.0, 0.0);
        for l in alexnet().gemms() {
            let report = sim.simulate(&l);
            energy += LayerEnergy::compute(&cfg, &mem, &report).on_chip_j();
            runtime += report.runtime_s;
        }
        let r = battery_lifetime(energy, runtime, 100.0);
        println!(
            "{:<24} {:>14.0} {:>14.0}",
            format!("uSystolic rate {cycles}c"),
            r.inferences,
            r.lifetime_s
        );
    }
    println!("\nEarly termination stretches the same battery across more inferences.");
    Ok(())
}
