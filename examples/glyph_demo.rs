//! A visual end-to-end demo: render noisy glyph samples as ASCII art and
//! classify each one with the trained CNN running on the uSystolic edge
//! array, side by side with the FP32 reference.
//!
//! ```sh
//! cargo run --release --example glyph_demo
//! ```

use usystolic::arch::{ComputingScheme, GemmExecutor, SystolicConfig};
use usystolic::models::dataset::{Dataset, IMAGE_SIZE};
use usystolic::models::trainer::TinyCnn;

fn ascii(pixels: &[f64]) -> Vec<String> {
    let ramp = [' ', '.', ':', 'o', '#'];
    (0..IMAGE_SIZE)
        .map(|r| {
            (0..IMAGE_SIZE)
                .map(|c| {
                    let v = pixels[r * IMAGE_SIZE + c].clamp(0.0, 1.0);
                    ramp[(v * (ramp.len() - 1) as f64).round() as usize]
                })
                .collect()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = Dataset::generate(40, 0.25, 11);
    let mut net = TinyCnn::new(7);
    net.train(&train, 8, 0.05);

    let usys =
        GemmExecutor::new(SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_mul_cycles(64)?);

    println!("glyph classification on the uSystolic edge array (rate coded, 64 cycles)\n");
    let demo = Dataset::generate(1, 0.35, 12345);
    for sample in demo.samples().iter().take(5) {
        for line in ascii(&sample.pixels) {
            println!("    {line}");
        }
        let fp = net.predict_fp(&sample.pixels);
        let unary = net.predict_with(&sample.pixels, &usys)?;
        println!(
            "    label {}  |  FP32 -> {fp}  |  uSystolic -> {unary}  {}\n",
            sample.label,
            if unary == sample.label { "ok" } else { "MISS" }
        );
    }

    let test = Dataset::generate(8, 0.35, 777);
    println!(
        "accuracy over {} noisy glyphs: uSystolic {:.1}%  |  FP32 {:.1}%",
        test.len(),
        100.0 * net.accuracy_with(&test, &usys)?,
        100.0 * net.accuracy_fp(&test)
    );
    Ok(())
}
