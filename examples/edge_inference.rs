//! Edge DNN inference under different computing schemes — the scenario the
//! paper's introduction motivates: a battery-powered device trading
//! accuracy for energy with early termination.
//!
//! Trains a small CNN in pure Rust on the procedural glyph dataset, then
//! evaluates its top-1 accuracy and simulated per-inference on-chip energy
//! under binary parallel, rate-coded uSystolic at several early-termination
//! points, and temporal-coded uSystolic.
//!
//! ```sh
//! cargo run --release --example edge_inference
//! ```

use usystolic::arch::{ComputingScheme, GemmExecutor, SystolicConfig};
use usystolic::hw::LayerEnergy;
use usystolic::models::dataset::Dataset;
use usystolic::models::trainer::TinyCnn;
use usystolic::sim::{MemoryHierarchy, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train the classifier.
    let train = Dataset::generate(40, 0.25, 11);
    let test = Dataset::generate(8, 0.25, 99);
    let mut net = TinyCnn::new(7);
    let train_acc = net.train(&train, 8, 0.05);
    println!(
        "trained on {} samples, final train accuracy {train_acc:.3}",
        train.len()
    );
    println!("FP32 test accuracy: {:.3}\n", net.accuracy_fp(&test));

    println!(
        "{:<22} {:>9} {:>12} {:>14}",
        "design", "accuracy", "MAC cycles", "on-chip uJ/inf"
    );

    let designs: Vec<(String, SystolicConfig, MemoryHierarchy)> = vec![
        (
            "Binary Parallel".into(),
            SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
            MemoryHierarchy::edge_with_sram(),
        ),
        (
            "uSystolic rate 32c".into(),
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_mul_cycles(32)?,
            MemoryHierarchy::no_sram(),
        ),
        (
            "uSystolic rate 64c".into(),
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_mul_cycles(64)?,
            MemoryHierarchy::no_sram(),
        ),
        (
            "uSystolic rate 128c".into(),
            SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_mul_cycles(128)?,
            MemoryHierarchy::no_sram(),
        ),
        (
            "uSystolic temporal".into(),
            SystolicConfig::edge(ComputingScheme::UnaryTemporal, 8),
            MemoryHierarchy::no_sram(),
        ),
    ];

    for (name, config, memory) in designs {
        let acc = net.accuracy_with(&test, &GemmExecutor::new(config))?;
        // Per-inference on-chip energy: sum over the CNN's two GEMM layers.
        let sim = Simulator::new(config, memory);
        let energy_uj: f64 = [TinyCnn::conv_gemm(), TinyCnn::fc_gemm()]
            .iter()
            .map(|g| {
                let report = sim.simulate(g);
                LayerEnergy::compute(&config, &memory, &report).on_chip_j() * 1.0e6
            })
            .sum();
        println!(
            "{:<22} {:>9.3} {:>12} {:>14.3}",
            name,
            acc,
            config.mac_cycles(),
            energy_uj
        );
    }
    println!("\nEarly termination trades a little accuracy for on-chip energy —");
    println!("the dynamic accuracy-energy knob of Section III-C.");
    Ok(())
}
