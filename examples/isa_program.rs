//! Compile and run a uSystolic ISA program (Section III-D).
//!
//! Shows the legacy-binary instruction schedule — identical to a TPU-like
//! weight-stationary array's — with the MAC-cycle-count indicator field
//! that lets the host re-terminate the array at run time.
//!
//! ```sh
//! cargo run --release --example isa_program
//! ```

use usystolic::arch::{
    ComputingScheme, GemmExecutor, Instruction, Processor, Program, ProgramBuilder, SystolicConfig,
};
use usystolic::gemm::{GemmConfig, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystolicConfig::new(4, 4, ComputingScheme::UnaryRate, 8)?;
    let gemm = GemmConfig::matmul(3, 10, 9)?;
    let input = Matrix::from_fn(3, 10, |p, k| ((p * 10 + k) % 19) as i64 * 13 - 110);
    let weights = Matrix::from_fn(10, 9, |k, n| ((k * 9 + n) % 17) as i64 * 15 - 120);

    // Compile the GEMM onto the array — the same fold loop a binary
    // array's scheduler would emit.
    let program = ProgramBuilder::new(config).compile(&gemm);
    println!(
        "Compiled program ({} instructions):\n{program}",
        program.len()
    );

    let processor = Processor::new(config, gemm);
    let full = processor.run(&program, &input, &weights)?;

    // Patch the MAC-cycle field to early-terminate at 32 multiply cycles
    // (EBT 6) — a one-instruction change, no re-compilation of the
    // schedule.
    let mut patched = program.instructions().to_vec();
    patched[0] = Instruction::SetMacCycles { mac_cycles: 33 };
    let terminated = processor.run(&Program::from_instructions(patched), &input, &weights)?;

    // Compare both against the direct executor.
    let (direct, _) = GemmExecutor::new(config).execute_lowered(&gemm, &input, &weights)?;
    let max_diff = |a: &Matrix<i64>, b: &Matrix<i64>| {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .max()
            .unwrap_or(0)
    };
    println!(
        "full-length program vs direct executor: max |diff| = {}",
        max_diff(&full, &direct)
    );
    println!(
        "early-terminated (33 MAC cycles) vs full: max |diff| = {} output counts",
        max_diff(&terminated, &full)
    );
    println!("\nThe schedule is unchanged; only the MAC-cycle indicator moved —");
    println!("the accuracy-energy knob travels in the instruction stream.");
    Ok(())
}
