//! Quickstart: run one GEMM through the uSystolic array and compare it
//! against the exact floating-point reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use usystolic::arch::{ComputingScheme, GemmExecutor, SystolicConfig};
use usystolic::gemm::loopnest::gemm_reference;
use usystolic::gemm::stats::ErrorStats;
use usystolic::gemm::{FeatureMap, GemmConfig, WeightSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small convolution: 8×8×4 input, 3×3 kernels, 8 output channels.
    let gemm = GemmConfig::conv(8, 8, 4, 3, 3, 1, 8)?;
    println!("GEMM: {gemm}");

    // Deterministic pseudo-random tensors in [-1, 1].
    let input = FeatureMap::from_fn(8, 8, 4, |h, w, c| {
        (((h * 31 + w * 7 + c * 3) % 17) as f64 / 8.5) - 1.0
    });
    let weights = WeightSet::from_fn(8, 3, 3, 4, |oc, wh, ww, ic| {
        ((((oc * 13 + wh * 5 + ww * 11 + ic) % 23) as f64 / 23.0) - 0.5) * 0.6
    });

    // The exact reference (Algorithm 1 of the paper, in f64).
    let reference = gemm_reference(&gemm, &input, &weights)?;

    // An 8-bit rate-coded uSystolic array in the paper's edge shape
    // (12×14, Eyeriss), early-terminated to 32 multiply cycles.
    let config = SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_mul_cycles(32)?;
    println!("Array: {config}");
    let outcome = GemmExecutor::new(config).execute(&gemm, &input, &weights)?;

    let err = ErrorStats::compare(reference.as_slice(), outcome.output.as_slice())?;
    println!("uSystolic vs FP64 reference: {err}");
    println!(
        "MAC windows: {}, OREG saturations: {}",
        outcome.stats.mac_windows, outcome.stats.saturation_events
    );

    // The same GEMM on the exact binary-parallel baseline for comparison.
    let bp = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
    let bp_out = GemmExecutor::new(bp).execute(&gemm, &input, &weights)?;
    let bp_err = ErrorStats::compare(reference.as_slice(), bp_out.output.as_slice())?;
    println!("Binary parallel (8-bit quantisation only): {bp_err}");
    Ok(())
}
