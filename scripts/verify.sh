#!/usr/bin/env sh
# Local mirror of the CI gate: hermetic build, tests, formatting, lints,
# then a smoke run of the observability pipeline.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace --offline"
cargo build --release --workspace --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "==> cargo fmt --all --check"
if rustup component list 2>/dev/null | grep -q "rustfmt.*(installed)"; then
    cargo fmt --all --check
else
    echo "    (rustfmt not installed, skipping)"
fi

echo "==> cargo clippy --workspace --all-targets --offline -- -D warnings"
if rustup component list 2>/dev/null | grep -q "clippy.*(installed)"; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "    (clippy not installed, skipping)"
fi

echo "==> cargo run --release -p xtask --offline -- lint"
cargo run --release -p xtask --offline -- lint

echo "==> sim_cli --check rejection smoke tests"
cli=./target/release/sim_cli
# Each class of illegal configuration must be rejected with a non-zero
# exit and its stable diagnostic code (see docs/diagnostics.md).
check_rejects() {
    code="$1"; shift
    if "$cli" --check "$@" > /dev/null 2>&1; then
        echo "FAIL: expected --check $* to exit non-zero ($code)" >&2
        exit 1
    fi
    "$cli" --check "$@" 2>&1 | grep -q "$code" || {
        echo "FAIL: expected $code in output of --check $*" >&2
        exit 1
    }
}
check_rejects USY020 --scheme UR --acc-width 4
check_rejects USY011 --scheme UR --cycles 256
check_rejects USY030 --scheme UR --wiring independent
check_rejects USY050 --scheme BP --no-sram --conv 27,27,96,5,5,1,256
# ...and the paper's byte-crawling configuration must pass clean.
"$cli" --check --scheme UR --cycles 128 --no-sram > /dev/null

echo "==> network abstract interpretation smoke tests"
# The interpreter must PROVE MNIST-CNN4 overflow-free at a 9-bit OREG
# (below the 14-bit worst case: exit 0 with USY060 proof notes)...
"$cli" --check --scheme UR --network mnist --acc-width 9 \
    | grep -q 'USY060' || {
    echo "FAIL: expected USY060 overflow-freedom proof at acc-width 9" >&2
    exit 1
}
# ...must prove saturation reachable at 4 bits...
check_rejects USY061 --scheme UR --network mnist --acc-width 4
# ...and must reject an early-termination point whose composed network
# error bound blows the accuracy budget.
check_rejects USY062 --scheme UR --network mnist --cycles 8 \
    --acc-budget 0.0001

echo "==> serve_cli --check serving-feasibility smoke tests"
serve=./target/release/serve_cli
# A provably overloaded plan with an impossible deadline must be
# rejected with both codes before any event is simulated...
if "$serve" --check --instances 1 --arrival-rate 100000000 \
    --deadline 0.0001 > /dev/null 2>&1; then
    echo "FAIL: expected overloaded serving plan to exit non-zero" >&2
    exit 1
fi
out=$("$serve" --check --instances 1 --arrival-rate 100000000 \
    --deadline 0.0001 2>&1 || true)
echo "$out" | grep -q USY070 || {
    echo "FAIL: expected USY070 in overloaded serving check" >&2
    exit 1
}
echo "$out" | grep -q USY072 || {
    echo "FAIL: expected USY072 in impossible-deadline serving check" >&2
    exit 1
}
# ...and a lightly loaded pool with a generous deadline passes clean.
"$serve" --check --instances 4 --arrival-rate 100 --deadline 1000 \
    > /dev/null

echo "==> sim_cli observability smoke test"
trace=$(mktemp /tmp/usystolic_trace.XXXXXX.json)
metrics=$(mktemp /tmp/usystolic_metrics.XXXXXX.json)
./target/release/sim_cli \
    --scheme UR --cycles 128 --shape edge --no-sram \
    --conv 31,31,96,5,5,1,256 \
    --trace "$trace" --metrics "$metrics" --json > /dev/null
grep -q '"traceEvents"' "$trace"
grep -q '"sim.dram_bytes"' "$metrics"
rm -f "$trace" "$metrics"

echo "==> kernel bench smoke test (fast paths vs serial bit-exactness)"
bench_json=$(mktemp /tmp/usystolic_kernel.XXXXXX.json)
./target/release/exp_kernel --short --out "$bench_json" > /dev/null
grep -q '"checksums_match":true' "$bench_json"
grep -q '"bit_exact":true' "$bench_json"
grep -q '"workers_consistent":true' "$bench_json"
grep -q '"temporal_bit_exact":true' "$bench_json"
grep -q '"hybrid_bit_exact":true' "$bench_json"
grep -q '"multiword_speedup"' "$bench_json"
rm -f "$bench_json"

echo "==> obs_cli perf-regression gate"
obs=./target/release/obs_cli
# Self-diff of the committed baseline is regression-free by definition.
"$obs" diff BENCH_kernel.json BENCH_kernel.json \
    --gate speedup --threshold 20 > /dev/null
# A fresh kernel bench must hold every baseline speedup within 20% —
# the substring gate covers speedup, temporal_speedup, hybrid_speedup
# and multiword_speedup alike.
# Full mode (~40 ms), matching how the committed baseline was produced:
# --short measures a smaller case whose ratio is not comparable.
kernel_now=$(mktemp /tmp/usystolic_kernel_now.XXXXXX.json)
./target/release/exp_kernel --out "$kernel_now" > /dev/null
"$obs" diff BENCH_kernel.json "$kernel_now" --gate speedup --threshold 20
# ...and the gate must actually bite: a synthetic regression exits 1.
kernel_bad=$(mktemp /tmp/usystolic_kernel_bad.XXXXXX.json)
printf '{"speedup":1.0}' > "$kernel_bad"
if "$obs" diff BENCH_kernel.json "$kernel_bad" \
    --gate speedup --threshold 20 > /dev/null 2>&1; then
    echo "FAIL: obs_cli diff did not flag a synthetic 97% regression" >&2
    exit 1
fi
rm -f "$kernel_now" "$kernel_bad"

echo "==> metrics exporter smoke test (prom + html)"
prom=$(mktemp /tmp/usystolic_metrics.XXXXXX.prom)
html=$(mktemp /tmp/usystolic_report.XXXXXX.html)
./target/release/sim_cli \
    --scheme UR --cycles 128 --shape edge --no-sram \
    --conv 31,31,96,5,5,1,256 \
    --metrics "$prom" --metrics-format prom --report "$html" --json > /dev/null
grep -q '# TYPE sim_dram_bytes counter' "$prom"
grep -q '<table' "$html"
if ./target/release/sim_cli --matmul 4,4,4 --metrics-format bogus \
    > /dev/null 2>&1; then
    echo "FAIL: --metrics-format bogus should exit 2" >&2
    exit 1
fi
rm -f "$prom" "$html"

echo "==> sim_cli --instances scaling smoke test"
./target/release/sim_cli --scheme UR --cycles 128 --no-sram \
    --conv 31,31,96,5,5,1,256 --instances 16 --json \
    | grep -q '"scaling_efficiency"'

echo "==> serve_cli smoke test (overload, JSON, determinism)"
serve=./target/release/serve_cli
a=$(mktemp /tmp/usystolic_serve.XXXXXX.json)
b=$(mktemp /tmp/usystolic_serve.XXXXXX.json)
# Overloaded open loop: must exit 0, emit well-formed JSON with latency
# percentiles, per-stage metrics and non-zero rejections.
"$serve" --seed 7 --workers 4 --instances 4 --arrival-rate 2000000 \
    --duration 0.002 --queue-depth 16 --deadline 1.0 --json > "$a"
grep -q '"p99_cycles"' "$a"
grep -q '"serve.queue_wait_ms"' "$a"
grep -q '"rejected":0' "$a" && {
    echo "FAIL: expected non-zero rejections under overload" >&2
    exit 1
}
# The same seed must reproduce bit for bit, also at another worker count
# (the echoed workers knob aside).
"$serve" --seed 7 --workers 1 --instances 4 --arrival-rate 2000000 \
    --duration 0.002 --queue-depth 16 --deadline 1.0 --json > "$b"
sed 's/"workers":[0-9]*//' "$a" > "$a.norm"
sed 's/"workers":[0-9]*//' "$b" > "$b.norm"
cmp -s "$a.norm" "$b.norm" || {
    echo "FAIL: serve_cli output differs across runs/worker counts" >&2
    exit 1
}
rm -f "$a" "$b" "$a.norm" "$b.norm"

echo "==> exp_faults smoke test (accuracy vs BER, graceful degradation)"
faults_json=$(mktemp /tmp/usystolic_faults.XXXXXX.json)
./target/release/exp_faults --short --out "$faults_json" > /dev/null
grep -q '"kernels_agree":true' "$faults_json"
grep -q '"deterministic":true' "$faults_json"
grep -q '"unary_graceful":true' "$faults_json"
rm -f "$faults_json"

echo "==> serve_cli fault-injection smoke test (seeded replay + conservation)"
fa=$(mktemp /tmp/usystolic_fault_serve.XXXXXX.json)
fb=$(mktemp /tmp/usystolic_fault_serve.XXXXXX.json)
# A seeded shard-kill scenario with retries, timeouts and brownout must
# reproduce bit for bit across worker counts (the echoed knob aside)...
"$serve" --matmul 64,64,64 --instances 2 --duration 0.01 \
    --arrival-rate 2000 --shard-fail 4,1 --retry-max 3 --retry-backoff 0.05 \
    --retry-jitter 250 --timeout 2 --brownout 500,600 --shed-expired \
    --fault-seed 11 --workers 4 --json > "$fa"
"$serve" --matmul 64,64,64 --instances 2 --duration 0.01 \
    --arrival-rate 2000 --shard-fail 4,1 --retry-max 3 --retry-backoff 0.05 \
    --retry-jitter 250 --timeout 2 --brownout 500,600 --shed-expired \
    --fault-seed 11 --workers 1 --json > "$fb"
sed 's/"workers":[0-9]*//' "$fa" > "$fa.norm"
sed 's/"workers":[0-9]*//' "$fb" > "$fb.norm"
cmp -s "$fa.norm" "$fb.norm" || {
    echo "FAIL: seeded fault scenario differs across worker counts" >&2
    exit 1
}
# ...must actually kill the shard and fail over...
grep -q '"shard_crashes":1' "$fa"
grep -q '"serve.failovers"' "$fa"
# ...and must lose nothing: every admitted request is accounted for.
grep -q '"lost":0' "$fa" || {
    echo "FAIL: shard-kill scenario lost requests" >&2
    exit 1
}
grep -q '"conserved":true' "$fa" || {
    echo "FAIL: request-conservation ledger does not balance" >&2
    exit 1
}
rm -f "$fa" "$fb" "$fa.norm" "$fb.norm"

echo "==> fidelity-tier smoke test (cycle vs packed vs analytic)"
fc=$(mktemp /tmp/usystolic_fid_cycle.XXXXXX.json)
fp=$(mktemp /tmp/usystolic_fid_packed.XXXXXX.json)
fn=$(mktemp /tmp/usystolic_fid_analytic.XXXXXX.json)
# The same seeded sim must be bit-identical at cycle and packed tier...
./target/release/sim_cli --scheme UR --cycles 128 --no-sram \
    --conv 31,31,96,5,5,1,256 --fidelity cycle --json > "$fc"
./target/release/sim_cli --scheme UR --cycles 128 --no-sram \
    --conv 31,31,96,5,5,1,256 --fidelity packed --json > "$fp"
cmp -s "$fc" "$fp" || {
    echo "FAIL: packed fidelity diverged from cycle-accurate sim" >&2
    exit 1
}
# ...and the same seeded serve scenario must run at both ends of the
# fidelity range, losing nothing at either tier.
"$serve" --seed 7 --instances 4 --arrival-rate 2000000 --duration 0.002 \
    --queue-depth 16 --deadline 1.0 --fidelity cycle --json > "$fc"
"$serve" --seed 7 --instances 4 --arrival-rate 2000000 --duration 0.002 \
    --queue-depth 16 --deadline 1.0 --fidelity analytic --json > "$fn"
grep -q '"lost":0' "$fc"
grep -q '"lost":0' "$fn"
# The analytic latency estimate must stay within 25% of the exact tier.
python3 -c '
import json, sys
exact = json.load(open(sys.argv[1]))["report"]["latency"]["p50_cycles"]
est = json.load(open(sys.argv[2]))["report"]["latency"]["p50_cycles"]
sys.exit(0 if abs(est - exact) / max(exact, 1) <= 0.25 else 1)
' "$fc" "$fn" || {
    echo "FAIL: analytic latency estimate drifted >25% from exact" >&2
    exit 1
}
rm -f "$fc" "$fp" "$fn"

echo "==> exp_des smoke test (fleet fidelity speedup + tolerance)"
des_json=$(mktemp /tmp/usystolic_des.XXXXXX.json)
./target/release/exp_des --short --out "$des_json" > /dev/null
grep -q '"packed_bit_identical":true' "$des_json"
grep -q '"estimates_within_tolerance":true' "$des_json"
grep -q '"speedup_target_met":true' "$des_json"
rm -f "$des_json"

echo "==> sim_cli device-fault smoke test"
# A faulted layer run must report kernel agreement in its JSON block...
./target/release/sim_cli --scheme UR --matmul 64,64,64 \
    --fault-ber 1e-3 --fault-stuck 2,3,1 --fault-seed 9 --json \
    | grep -q '"kernels_agree":true'
# ...and malformed fault flags must exit 2 with a diagnostic.
rc=0; ./target/release/sim_cli --matmul 4,4,4 --fault-ber 1.5 \
    > /dev/null 2>&1 || rc=$?
test "$rc" -eq 2 || {
    echo "FAIL: --fault-ber 1.5 should exit 2 (got $rc)" >&2
    exit 1
}
rc=0; ./target/release/sim_cli --matmul 4,4,4 --fault-stuck 2,3,7 \
    > /dev/null 2>&1 || rc=$?
test "$rc" -eq 2 || {
    echo "FAIL: --fault-stuck 2,3,7 should exit 2 (got $rc)" >&2
    exit 1
}

echo "verify: OK"
