#!/usr/bin/env sh
# Local mirror of the CI gate: hermetic build, tests, formatting, lints,
# then a smoke run of the observability pipeline.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace --offline"
cargo build --release --workspace --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "==> cargo fmt --all --check"
if rustup component list 2>/dev/null | grep -q "rustfmt.*(installed)"; then
    cargo fmt --all --check
else
    echo "    (rustfmt not installed, skipping)"
fi

echo "==> cargo clippy --workspace --all-targets --offline -- -D warnings"
if rustup component list 2>/dev/null | grep -q "clippy.*(installed)"; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "    (clippy not installed, skipping)"
fi

echo "==> sim_cli observability smoke test"
trace=$(mktemp /tmp/usystolic_trace.XXXXXX.json)
metrics=$(mktemp /tmp/usystolic_metrics.XXXXXX.json)
./target/release/sim_cli \
    --scheme UR --cycles 128 --shape edge --no-sram \
    --conv 31,31,96,5,5,1,256 \
    --trace "$trace" --metrics "$metrics" --json > /dev/null
grep -q '"traceEvents"' "$trace"
grep -q '"sim.dram_bytes"' "$metrics"
rm -f "$trace" "$metrics"

echo "verify: OK"
