//! Golden-vector regression tests.
//!
//! The unary results are deterministic functions of the Sobol direction
//! numbers, the C-BSG gating and the reuse pipeline. These tests pin a
//! handful of exact outputs so that any accidental change to the RNG
//! tables, coding or accumulation order is caught immediately (accuracy
//! tests with tolerances would silently absorb small regressions).

use usystolic::arch::{ComputingScheme, GemmExecutor, SystolicConfig, UnaryRow};
use usystolic::gemm::{GemmConfig, Matrix};
use usystolic::unary::coding::{encode_unipolar, Coding};
use usystolic::unary::rng::{NumberSource, SobolSource};
use usystolic::unary::SignMagnitude;

#[test]
fn golden_sobol_prefixes() {
    let take = |dim: usize, w: u32, n: usize| -> Vec<u64> {
        let mut s = SobolSource::dimension(dim, w);
        (0..n).map(|_| s.next()).collect()
    };
    assert_eq!(take(0, 4, 8), [0, 8, 12, 4, 6, 14, 10, 2]);
    assert_eq!(take(1, 4, 8), [0, 8, 4, 12, 6, 14, 2, 10]);
    assert_eq!(take(2, 4, 8), [0, 8, 4, 12, 10, 2, 14, 6]);
    assert_eq!(take(3, 4, 8), [0, 8, 4, 12, 14, 6, 10, 2]);
}

#[test]
fn golden_rate_coded_stream() {
    let bs = encode_unipolar(5, 4, SobolSource::dimension(0, 3)).expect("valid encode");
    // Threshold 5 over the dim-0 sequence 0,4,2,6,3,7,1,5.
    assert_eq!(bs.to_string(), "11011001");
}

#[test]
fn golden_unary_row_counts() {
    let mut row = UnaryRow::new(
        8,
        SignMagnitude::from_signed(77, 8),
        vec![
            SignMagnitude::from_signed(100, 8),
            SignMagnitude::from_signed(-100, 8),
            SignMagnitude::from_signed(37, 8),
        ],
        Coding::Rate,
    );
    let counts = row.run_fast(128).to_vec();
    assert_eq!(counts, [61, -61, 23]);
}

#[test]
fn golden_unary_row_counts_temporal() {
    let mut row = UnaryRow::new(
        8,
        SignMagnitude::from_signed(-90, 8),
        vec![
            SignMagnitude::from_signed(64, 8),
            SignMagnitude::from_signed(17, 8),
        ],
        Coding::Temporal,
    );
    let counts = row.run_fast(128).to_vec();
    assert_eq!(counts, [-45, -12]);
}

#[test]
fn golden_unary_gemm_output() {
    let gemm = GemmConfig::matmul(2, 3, 2).expect("valid shape");
    let input = Matrix::from_vec(2, 3, vec![100, -50, 25, 0, 127, -127]).expect("shape");
    let weights = Matrix::from_vec(3, 2, vec![64, -64, 32, 32, -128, 128]).expect("shape");
    let cfg =
        SystolicConfig::new(3, 2, ComputingScheme::UnaryRate, 8).expect("valid configuration");
    let (out, _) = GemmExecutor::new(cfg)
        .execute_lowered(&gemm, &input, &weights)
        .expect("runs");
    // In the 1/128-count domain; pinned from the current implementation.
    assert_eq!(out.as_slice(), [12, -38, 158, -96]);
}

#[test]
fn golden_ugemm_h_output() {
    let gemm = GemmConfig::matmul(1, 2, 1).expect("valid shape");
    let input = Matrix::from_vec(1, 2, vec![100, -100]).expect("shape");
    let weights = Matrix::from_vec(2, 1, vec![64, 64]).expect("shape");
    let cfg =
        SystolicConfig::new(2, 1, ComputingScheme::UGemmHybrid, 8).expect("valid configuration");
    let (out, _) = GemmExecutor::new(cfg)
        .execute_lowered(&gemm, &input, &weights)
        .expect("runs");
    // Exact: (100·64 − 100·64)/64 = 0; bitstream noise stays small.
    assert!(out[(0, 0)].abs() <= 8, "got {}", out[(0, 0)]);
    // Pin the exact current value as the regression anchor.
    assert_eq!(out[(0, 0)], 0);
}
