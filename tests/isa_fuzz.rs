//! Property-based fuzzing of the ISA processor: arbitrary instruction
//! sequences must never panic — they either execute or return a typed
//! sequencing error — and valid programs always match the direct
//! executor.

// Gated off by default: proptest is a registry crate and the workspace
// must build with no network access. Enable with
// `--features external-deps` after re-adding `proptest = "1"` to the
// root [dev-dependencies].
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use usystolic::arch::{
    ComputingScheme, GemmExecutor, Instruction, Processor, Program, ProgramBuilder, SystolicConfig,
};
use usystolic::gemm::{GemmConfig, Matrix};

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (0u64..300).prop_map(|mac_cycles| Instruction::SetMacCycles { mac_cycles }),
        (0u32..6, 0u32..6)
            .prop_map(|(row_fold, col_fold)| Instruction::LoadWeights { row_fold, col_fold }),
        any::<bool>().prop_map(|accumulate| Instruction::MatMul { accumulate }),
        (0u32..6).prop_map(|col_fold| Instruction::DrainOutputs { col_fold }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary instruction streams never panic.
    #[test]
    fn arbitrary_programs_never_panic(
        instructions in proptest::collection::vec(arb_instruction(), 0..12)
    ) {
        let cfg = SystolicConfig::new(4, 3, ComputingScheme::BinaryParallel, 8)
            .expect("valid configuration");
        let gemm = GemmConfig::matmul(2, 7, 5).expect("valid shape");
        let input = Matrix::from_fn(2, 7, |p, k| (p + k) as i64 - 3);
        let weights = Matrix::from_fn(7, 5, |k, n| (k * n) as i64 % 9 - 4);
        let program = Program::from_instructions(instructions);
        // Either Ok or a typed IsaError — both acceptable; panics are not.
        let _ = Processor::new(cfg, gemm).run(&program, &input, &weights);
    }

    /// Compiled programs always run and match the direct executor, for
    /// random GEMM shapes and array shapes.
    #[test]
    fn compiled_programs_always_match(
        m in 1usize..5, k in 1usize..20, n in 1usize..20,
        rows in 1usize..7, cols in 1usize..7,
        seed in any::<u32>(),
    ) {
        let cfg = SystolicConfig::new(rows, cols, ComputingScheme::BinaryParallel, 8)
            .expect("valid configuration");
        let gemm = GemmConfig::matmul(m, k, n).expect("valid shape");
        let s = seed as usize;
        let input = Matrix::from_fn(m, k, |p, kk| ((p * k + kk + s) % 31) as i64 - 15);
        let weights = Matrix::from_fn(k, n, |kk, c| ((kk * n + c + s) % 29) as i64 - 14);
        let program = ProgramBuilder::new(cfg).compile(&gemm);
        let via_isa = Processor::new(cfg, gemm)
            .run(&program, &input, &weights)
            .expect("compiled programs are always valid");
        let (direct, _) = GemmExecutor::new(cfg)
            .execute_lowered(&gemm, &input, &weights)
            .expect("direct execution succeeds");
        prop_assert_eq!(via_isa, direct);
    }
}
