//! Golden equivalence for the discrete-event core (`crates/des`).
//!
//! The five files under `tests/golden/` were captured from `sim_cli` and
//! `serve_cli` *before* both loops were ported onto the shared event
//! calendar. These tests rebuild each CLI's JSON record in-process and
//! assert the ported engines reproduce the pinned bytes bit for bit —
//! report fields *and* obs metric snapshots — at every worker count.
//! The calendar's own `des.*` instrumentation is new by construction, so
//! it is stripped before the golden comparison and asserted present
//! separately; everything else must not have moved by a single bit.

use usystolic::arch::{kernel_paths, ComputingScheme, SystolicConfig};
use usystolic::des::Fidelity;
use usystolic::gemm::GemmConfig;
use usystolic::hw::evaluate_layer;
use usystolic::hw::summary::NetworkEvaluation;
use usystolic::models::zoo;
use usystolic::obs::{JsonValue, ToJson};
use usystolic::serve::loadgen::{ArrivalProcess, LoadGenConfig};
use usystolic::serve::{
    serve, BrownoutPolicy, FleetFaultPlan, RetryPolicy, ServeConfig, ShardFailure, Workload,
};
use usystolic::sim::{MemoryHierarchy, CLOCK_HZ};

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {path}: {e}"))
        .trim_end()
        .to_owned()
}

/// Drops the calendar's own `des.*` keys from every metrics section —
/// the only keys the port is allowed to add.
fn strip_des_metrics(mut metrics: JsonValue) -> JsonValue {
    if let JsonValue::Object(sections) = &mut metrics {
        for (_, section) in sections.iter_mut() {
            if let JsonValue::Object(entries) = section {
                entries.retain(|(key, _)| !key.starts_with("des."));
            }
        }
    }
    metrics
}

/// `serve_cli --seed 7 --workers W --instances 4 --arrival-rate 2000000
/// --duration 0.002 --queue-depth 16 --deadline 1.0 --json`.
fn overload_config(workers: usize) -> (ServeConfig, Vec<Workload>, u64) {
    let seed = 7;
    let config = ServeConfig {
        array: SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
        memory: MemoryHierarchy::no_sram(),
        instances: 4,
        queue_capacity: 16,
        max_batch: 8,
        workers,
        duration_cycles: (0.002 * CLOCK_HZ).ceil() as u64,
        load: LoadGenConfig {
            process: ArrivalProcess::OpenPoisson {
                mean_interarrival_cycles: CLOCK_HZ / 2_000_000.0,
            },
            seed,
            classes: 1,
            high_priority_fraction: 0.0,
            deadline_cycles: Some((1.0 * 1.0e-3 * CLOCK_HZ).round() as u64),
        },
        faults: FleetFaultPlan {
            seed,
            retry: RetryPolicy {
                max_retries: 0,
                backoff_base_cycles: (0.01 * 1.0e-3 * CLOCK_HZ).round() as u64,
                jitter_permille: 0,
            },
            ..FleetFaultPlan::default()
        },
        fidelity: Fidelity::CycleAccurate,
    };
    let gemm = GemmConfig::matmul(64, 64, 64).expect("valid");
    (
        config,
        vec![Workload::from_gemm("matmul64,64,64", gemm)],
        seed,
    )
}

/// `serve_cli --matmul 64,64,64 --instances 2 --duration 0.01
/// --arrival-rate 2000 --shard-fail 4,1 --retry-max 3 --retry-backoff
/// 0.05 --retry-jitter 250 --timeout 2 --brownout 500,600 --shed-expired
/// --fault-seed 11 --workers W --json`.
fn shardkill_config(workers: usize) -> (ServeConfig, Vec<Workload>, u64) {
    let seed = 1; // serve_cli default
    let config = ServeConfig {
        array: SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
        memory: MemoryHierarchy::no_sram(),
        instances: 2,
        queue_capacity: 64,
        max_batch: 8,
        workers,
        duration_cycles: (0.01 * CLOCK_HZ).ceil() as u64,
        load: LoadGenConfig {
            process: ArrivalProcess::OpenPoisson {
                mean_interarrival_cycles: CLOCK_HZ / 2000.0,
            },
            seed,
            classes: 1,
            high_priority_fraction: 0.0,
            deadline_cycles: None,
        },
        faults: FleetFaultPlan {
            seed: 11,
            failures: vec![ShardFailure {
                at: (4.0 * 1.0e-3 * CLOCK_HZ).round() as u64,
                instance: 1,
            }],
            slowdowns: Vec::new(),
            timeout_cycles: Some((2.0 * 1.0e-3 * CLOCK_HZ).round() as u64),
            shed_expired: true,
            retry: RetryPolicy {
                max_retries: 3,
                backoff_base_cycles: (0.05 * 1.0e-3 * CLOCK_HZ).round() as u64,
                jitter_permille: 250,
            },
            brownout: Some(BrownoutPolicy {
                depth_permille: 500,
                service_permille: 600,
            }),
        },
        fidelity: Fidelity::CycleAccurate,
    };
    let gemm = GemmConfig::matmul(64, 64, 64).expect("valid");
    (
        config,
        vec![Workload::from_gemm("matmul64,64,64", gemm)],
        seed,
    )
}

/// Runs the engine under a fresh obs session and rebuilds `serve_cli`'s
/// `--json` record. Returns `(record, metrics)` so callers can compare
/// both the des-stripped and untouched renders.
fn serve_record(config: &ServeConfig, workloads: &[Workload], seed: u64) -> (JsonValue, JsonValue) {
    let prior = usystolic::obs::take();
    usystolic::obs::install(usystolic::obs::Session::new());
    let report = serve(config, workloads).expect("valid config");
    let session = usystolic::obs::take().unwrap_or_default();
    if let Some(p) = prior {
        usystolic::obs::install(p);
    }
    let metrics = session.metrics.to_json();
    let record = |m: JsonValue| {
        JsonValue::object(vec![
            ("config", config.array.to_json()),
            ("memory", config.memory.to_json()),
            ("seed", seed.to_json()),
            ("faults", config.faults.to_json()),
            ("report", report.to_json()),
            ("metrics", m),
        ])
    };
    (record(metrics.clone()), metrics)
}

/// The report renders `"workers":N` exactly once; pin it to 1 so runs at
/// different worker counts are byte-comparable.
fn normalize_workers(render: &str, workers: usize) -> String {
    render.replacen(&format!("\"workers\":{workers}"), "\"workers\":1", 1)
}

fn assert_serve_golden(name: &str, build: fn(usize) -> (ServeConfig, Vec<Workload>, u64)) {
    let pinned = golden(name);
    let mut unfiltered = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (config, workloads, seed) = build(workers);
        let (record, metrics) = serve_record(&config, &workloads, seed);
        // Bit-for-bit against the pre-port capture, modulo the new des.*
        // keys and the worker count baked into the report.
        let (mut stripped, report_rest) = match record.clone() {
            JsonValue::Object(mut pairs) => {
                let m = pairs.pop().expect("metrics last");
                (m, JsonValue::Object(pairs))
            }
            other => panic!("record is not an object: {other:?}"),
        };
        stripped.1 = strip_des_metrics(stripped.1);
        let filtered = match report_rest {
            JsonValue::Object(mut pairs) => {
                pairs.push(stripped);
                JsonValue::Object(pairs)
            }
            other => panic!("unreachable: {other:?}"),
        };
        assert_eq!(
            normalize_workers(&filtered.render(), workers),
            pinned,
            "{name} diverged from the pre-port golden at workers={workers}"
        );
        // The calendar's own instrumentation must be present and counted
        // on the sequential loop (identical at every worker count).
        if let JsonValue::Object(sections) = &metrics {
            let counters = sections
                .iter()
                .find(|(k, _)| k == "counters")
                .map(|(_, v)| v)
                .expect("counters section");
            if let JsonValue::Object(entries) = counters {
                for key in [
                    "des.events.scheduled",
                    "des.events.dispatched",
                    "des.dispatch{fidelity=\"cycle\"}",
                ] {
                    assert!(
                        entries.iter().any(|(k, _)| k == key),
                        "{name}: missing {key} at workers={workers}"
                    );
                }
            }
        }
        unfiltered.push(normalize_workers(&record.render(), workers));
    }
    // Worker-count invariance of the *unfiltered* record: even the des.*
    // series must not depend on the pool width.
    for render in &unfiltered[1..] {
        assert_eq!(render, &unfiltered[0], "{name}: workers changed a bit");
    }
}

#[test]
fn serve_overload_golden_is_bit_identical_at_every_worker_count() {
    assert_serve_golden("serve_seed7_overload.json", overload_config);
}

#[test]
fn serve_shardkill_golden_is_bit_identical_at_every_worker_count() {
    assert_serve_golden("serve_faults_shardkill.json", shardkill_config);
}

#[test]
fn serve_packed_tier_matches_cycle_accurate_bit_for_bit() {
    for build in [overload_config, shardkill_config] {
        let (config, workloads, seed) = build(1);
        let (cycle, _) = serve_record(&config, &workloads, seed);
        let mut packed_cfg = config.clone();
        packed_cfg.fidelity = Fidelity::Packed;
        let (packed, _) = serve_record(&packed_cfg, &workloads, seed);
        // Reports must be identical; only the fidelity label on
        // des.dispatch may differ, so compare des-stripped renders.
        let strip = |v: JsonValue| match v {
            JsonValue::Object(mut pairs) => {
                for (k, section) in pairs.iter_mut() {
                    if k == "metrics" {
                        *section = strip_des_metrics(section.clone());
                    }
                }
                JsonValue::Object(pairs)
            }
            other => other,
        };
        assert_eq!(strip(cycle).render(), strip(packed).render());
    }
}

#[test]
fn sim_layer_goldens_are_bit_identical() {
    // sim_cli --scheme UR --cycles 128 --no-sram --conv 31,31,96,5,5,1,256
    let ur = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
        .with_mul_cycles(128)
        .expect("valid EBT");
    let no_sram = MemoryHierarchy::no_sram();
    let conv2 = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).expect("valid");
    let record = JsonValue::object(vec![
        ("config", ur.to_json()),
        ("memory", no_sram.to_json()),
        ("gemm", conv2.to_json()),
        (
            "evaluation",
            evaluate_layer(&ur, &no_sram, &conv2).to_json(),
        ),
    ]);
    assert_eq!(record.render(), golden("sim_ur128_conv2.json"));

    // sim_cli --scheme BP --matmul 64,64,64
    let bp = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
    let sram = MemoryHierarchy::edge_with_sram();
    let m64 = GemmConfig::matmul(64, 64, 64).expect("valid");
    let record = JsonValue::object(vec![
        ("config", bp.to_json()),
        ("memory", sram.to_json()),
        ("gemm", m64.to_json()),
        ("evaluation", evaluate_layer(&bp, &sram, &m64).to_json()),
    ]);
    assert_eq!(record.render(), golden("sim_bp_matmul64.json"));
}

#[test]
fn sim_network_golden_survives_the_des_port() {
    // sim_cli --scheme UR --network mnist: the network path now runs
    // through the event calendar, and must not have moved a single bit.
    let ur = SystolicConfig::edge(ComputingScheme::UnaryRate, 8);
    let no_sram = MemoryHierarchy::no_sram();
    let network = zoo::mnist_cnn4();
    let ev = NetworkEvaluation::evaluate(&ur, &no_sram, &network.gemms());
    let record = JsonValue::object(vec![
        ("config", ur.to_json()),
        ("memory", no_sram.to_json()),
        ("network", network.to_json()),
        ("evaluation", ev.to_json()),
    ]);
    assert_eq!(record.render(), golden("sim_ur_mnist.json"));
}

#[test]
fn analytic_tier_tracks_exact_latency_within_tolerance() {
    let (config, workloads, _) = overload_config(1);
    let exact = serve(&config, &workloads).expect("valid");
    let mut analytic_cfg = config.clone();
    analytic_cfg.fidelity = Fidelity::Analytic;
    let analytic = serve(&analytic_cfg, &workloads).expect("valid");
    assert_eq!(exact.lost(), 0);
    assert_eq!(analytic.lost(), 0);
    let tolerance = |a: u64, b: u64| {
        let (a, b) = (a as f64, b as f64);
        (a - b).abs() / b.max(1.0) <= 0.25
    };
    assert!(
        tolerance(analytic.latency.p50_cycles, exact.latency.p50_cycles),
        "analytic p50 {} vs exact {}",
        analytic.latency.p50_cycles,
        exact.latency.p50_cycles
    );
    assert!(
        tolerance(analytic.service.p50_cycles, exact.service.p50_cycles),
        "analytic service p50 {} vs exact {}",
        analytic.service.p50_cycles,
        exact.service.p50_cycles
    );
}

#[test]
fn kernel_dispatch_table_agrees_with_the_analyzer() {
    // Satellite check: KernelMode::Auto's static per-scheme table and
    // the analyzer's independently derived paths never drift apart.
    for scheme in [
        ComputingScheme::BinaryParallel,
        ComputingScheme::BinarySerial,
        ComputingScheme::UGemmHybrid,
        ComputingScheme::UnaryRate,
        ComputingScheme::UnaryTemporal,
    ] {
        assert_eq!(
            kernel_paths(scheme),
            usystolic::analyze::derive_kernel_paths(scheme).as_slice(),
            "kernel table drifted for {scheme:?}"
        );
    }
}
