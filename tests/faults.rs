//! Tier-1 contracts of the fault-injection layer (`crates/faults` and
//! the fleet faults of `crates/serve`):
//!
//! * graceful degradation — one flipped bit in a rate-coded stream of
//!   length `2^(N-1)` moves the decoded value by exactly one LSB, while
//!   a binary register flip at bit `i` is worth `2^i` (the MSB of the
//!   8-bit product register is worth `2^14`);
//! * determinism — same seed ⇒ identical fault sites, outputs and
//!   checksums, from both unary kernels, on repeated runs;
//! * conservation — shard crashes, retries, timeouts and brown-out
//!   never lose a request: the serving ledger always balances, at every
//!   worker count.

use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::faults::{
    faulty_binary_gemm, faulty_unary_gemm, product_register_bits, DeviceFaults, FaultKernel,
    GemmShape,
};
use usystolic::gemm::GemmConfig;
use usystolic::serve::loadgen::{ArrivalProcess, LoadGenConfig};
use usystolic::serve::{
    serve, BrownoutPolicy, FleetFaultPlan, RetryPolicy, ServeConfig, ServeReport, ShardFailure,
    ShardSlowdown, Workload,
};
use usystolic::sim::MemoryHierarchy;
use usystolic::unary::bsg::ConditionalBsg;
use usystolic::unary::coding::Coding;
use usystolic::unary::packed::sequence;
use usystolic::unary::rng::{SobolSource, SplitMix64};
use usystolic::unary::stream_len;

/// One flipped bit in a rate-coded product stream of length `2^(N-1)`
/// changes the decoded value (the ones count) by exactly one LSB — for
/// every operand pair and every cycle position.
#[test]
fn one_rate_flip_moves_the_decoded_value_by_one_lsb() {
    let bitwidth = 8u32;
    let len = stream_len(bitwidth) as usize;
    assert_eq!(len, 1 << (bitwidth - 1));
    let ifm_seq = sequence(&mut SobolSource::dimension(1, bitwidth - 1), len as u64);
    let mut rng = SplitMix64::new(0x00F1_1B17);
    for _ in 0..24 {
        let x = rng.below(len as u64 + 1);
        let w = rng.below(len as u64 + 1);
        // The actual product bitstream the PE emits for |x|·|w|.
        let mut cbsg = ConditionalBsg::new(w, SobolSource::dimension(0, bitwidth - 1));
        let stream: Vec<bool> = ifm_seq.iter().map(|&s| cbsg.step(s < x)).collect();
        let decoded = stream.iter().filter(|&&b| b).count() as i64;
        for j in 0..len {
            let mut upset = stream.clone();
            upset[j] = !upset[j];
            let re_decoded = upset.iter().filter(|&&b| b).count() as i64;
            assert_eq!(
                (re_decoded - decoded).abs(),
                1,
                "flip at cycle {j} of |{x}|*|{w}| moved the value by more than one LSB"
            );
        }
    }
}

/// The binary baseline has no such bound: a flip at register bit `i`
/// changes the decoded product by `2^i`, and the 8-bit product register
/// tops out at `2^14` — sixteen thousand unary LSBs. Verified end to end
/// through the injection kernel's recorded fault sites.
#[test]
fn binary_register_flips_scale_with_bit_position() {
    let shape = GemmShape { m: 1, k: 1, n: 1 };
    assert_eq!(product_register_bits(8), 15);
    let clean = faulty_binary_gemm(&[96], &[85], shape, 8, &DeviceFaults::new(0))
        .expect("valid gemm")
        .output[0];
    assert_eq!(clean, 96 * 85);
    // Scan seeds for single-flip runs: deterministic, so each seed's
    // flip site and output delta are frozen facts.
    let mut seen_msb = false;
    let mut singles = 0u32;
    for seed in 0..400u64 {
        let model = DeviceFaults::new(seed).with_ber(0.05);
        let r = faulty_binary_gemm(&[96], &[85], shape, 8, &model).expect("valid gemm");
        if r.transient_flips != 1 {
            continue;
        }
        singles += 1;
        let bit = r.sites[0].cycle;
        assert_eq!(
            (r.output[0] - clean).abs(),
            1 << bit,
            "seed {seed}: flip at bit {bit} must be worth 2^{bit}"
        );
        seen_msb |= bit == 14;
        // The same seed on the unary kernel costs at most one LSB per
        // flip, however many land.
        let u = faulty_unary_gemm(
            &[96],
            &[85],
            shape,
            8,
            Coding::Rate,
            &model,
            FaultKernel::Packed,
        )
        .expect("valid gemm");
        let u_clean = faulty_unary_gemm(
            &[96],
            &[85],
            shape,
            8,
            Coding::Rate,
            &DeviceFaults::new(seed),
            FaultKernel::Packed,
        )
        .expect("valid gemm");
        assert!(
            (u.output[0] - u_clean.output[0]).unsigned_abs() <= u.transient_flips,
            "seed {seed}: unary error exceeded one LSB per flip"
        );
    }
    assert!(singles >= 20, "seed scan found too few single-flip runs");
    assert!(seen_msb, "seed scan never hit the MSB; widen the scan");
}

/// Same seed ⇒ bit-identical fault sites and outputs, from both kernels,
/// for both codings, on repeated runs. Different seed ⇒ different sites.
#[test]
fn device_faults_are_deterministic_end_to_end() {
    let shape = GemmShape { m: 4, k: 6, n: 3 };
    let mut rng = SplitMix64::new(77);
    let a: Vec<i64> = (0..shape.m * shape.k)
        .map(|_| rng.range_i64(-127, 127))
        .collect();
    let b: Vec<i64> = (0..shape.k * shape.n)
        .map(|_| rng.range_i64(-127, 127))
        .collect();
    let run = |seed: u64, coding: Coding, kernel: FaultKernel| {
        let model = DeviceFaults::new(seed).with_ber(0.02);
        faulty_unary_gemm(&a, &b, shape, 8, coding, &model, kernel).expect("valid gemm")
    };
    for coding in [Coding::Rate, Coding::Temporal] {
        let first = run(11, coding, FaultKernel::Serial);
        assert_eq!(first, run(11, coding, FaultKernel::Serial), "replay");
        assert_eq!(first, run(11, coding, FaultKernel::Packed), "kernels");
        assert_ne!(
            first.sites,
            run(12, coding, FaultKernel::Serial).sites,
            "seeds"
        );
        assert!(first.transient_flips > 0, "BER 0.02 must inject");
    }
}

fn fault_config(faults: FleetFaultPlan, seed: u64) -> ServeConfig {
    ServeConfig {
        array: SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
        memory: MemoryHierarchy::edge_with_sram(),
        instances: 2,
        queue_capacity: 32,
        max_batch: 4,
        workers: 1,
        duration_cycles: 400_000,
        load: LoadGenConfig {
            process: ArrivalProcess::OpenPoisson {
                mean_interarrival_cycles: 2_000.0,
            },
            seed,
            classes: 1,
            high_priority_fraction: 0.25,
            deadline_cycles: Some(50_000),
        },
        faults,
        fidelity: usystolic::serve::Fidelity::CycleAccurate,
    }
}

fn m64() -> Workload {
    Workload::from_gemm("m64", GemmConfig::matmul(64, 64, 64).unwrap())
}

/// Killing a shard mid-run loses nothing: every admitted request still
/// completes, times out or fails, and failover re-routes the crashed
/// shard's in-flight work to the survivor.
#[test]
fn shard_kill_conserves_every_request() {
    let plan = FleetFaultPlan {
        seed: 5,
        failures: vec![ShardFailure {
            at: 150_000,
            instance: 1,
        }],
        retry: RetryPolicy {
            max_retries: 3,
            backoff_base_cycles: 1_000,
            jitter_permille: 100,
        },
        ..FleetFaultPlan::default()
    };
    let report = serve(&fault_config(plan, 5), &[m64()]).expect("valid config");
    assert_eq!(report.shard_crashes, 1);
    assert!(report.completed > 0, "the survivor keeps serving");
    assert!(
        report.retries > 0 && report.failovers > 0,
        "the crash must strand a batch mid-flight: retries={} failovers={}",
        report.retries,
        report.failovers
    );
    assert_eq!(report.lost(), 0);
    assert!(report.conserved(), "ledger must balance after a crash");
    // The dead shard accrues no busy cycles after the crash: the run's
    // tail is carried entirely by instance 2.
    assert!(report.instance_busy_cycles[0] < report.instance_busy_cycles[1]);
}

/// With the whole fleet down and retries exhausted, requests fail — they
/// are never silently dropped.
#[test]
fn whole_fleet_down_fails_requests_without_losing_them() {
    let plan = FleetFaultPlan {
        seed: 1,
        failures: vec![
            ShardFailure {
                at: 100_000,
                instance: 1,
            },
            ShardFailure {
                at: 100_000,
                instance: 2,
            },
        ],
        ..FleetFaultPlan::default()
    };
    let report = serve(&fault_config(plan, 9), &[m64()]).expect("valid config");
    assert_eq!(report.shard_crashes, 2);
    assert!(report.failed > 0, "stranded requests must fail explicitly");
    assert_eq!(report.lost(), 0);
    assert!(report.conserved());
}

/// The full fault gauntlet — crash, slowdown, timeouts, deadline
/// shedding, retry and brown-out at once — reproduces bit for bit at
/// every worker count, including the resilience counters.
#[test]
fn fleet_faults_are_deterministic_across_worker_counts() {
    let plan = FleetFaultPlan {
        seed: 13,
        failures: vec![ShardFailure {
            at: 200_000,
            instance: 2,
        }],
        slowdowns: vec![ShardSlowdown {
            at: 80_000,
            instance: 1,
            factor_percent: 250,
        }],
        timeout_cycles: Some(40_000),
        shed_expired: true,
        retry: RetryPolicy {
            max_retries: 2,
            backoff_base_cycles: 2_048,
            jitter_permille: 250,
        },
        brownout: Some(BrownoutPolicy {
            depth_permille: 500,
            service_permille: 600,
        }),
    };
    let run = |workers: usize| -> ServeReport {
        let mut config = fault_config(plan.clone(), 21);
        config.workers = workers;
        serve(&config, &[m64()]).expect("valid config")
    };
    let one = run(1);
    assert!(one.conserved());
    assert!(one.completed > 0);
    for workers in [2, 4, 8] {
        let other = run(workers);
        assert_eq!(one.records, other.records, "workers={workers}");
        assert_eq!(one.retries, other.retries, "workers={workers}");
        assert_eq!(one.timed_out, other.timed_out, "workers={workers}");
        assert_eq!(one.failovers, other.failovers, "workers={workers}");
        assert_eq!(one.failed, other.failed, "workers={workers}");
        assert_eq!(one.brownout_requests, other.brownout_requests);
        assert_eq!(one.latency, other.latency, "workers={workers}");
        assert_eq!(one.instance_busy_cycles, other.instance_busy_cycles);
    }
    assert_eq!(run(4).records, one.records, "replay");
}

/// Brown-out turns overload into degraded service instead of rejection:
/// under pressure it serves strictly more requests than the same
/// configuration without it, and the quiet plan stays bit-identical to
/// the default engine.
#[test]
fn brownout_trades_precision_for_admission() {
    let overload = |faults: FleetFaultPlan| -> ServeReport {
        let mut config = fault_config(faults, 17);
        config.load.process = ArrivalProcess::OpenPoisson {
            mean_interarrival_cycles: 300.0,
        };
        config.queue_capacity = 8;
        config.instances = 1;
        serve(&config, &[m64()]).expect("valid config")
    };
    let strict = overload(FleetFaultPlan::default());
    let browned = overload(FleetFaultPlan {
        brownout: Some(BrownoutPolicy {
            depth_permille: 500,
            service_permille: 500,
        }),
        ..FleetFaultPlan::default()
    });
    assert!(strict.rejected > 0, "the baseline must actually overload");
    assert!(browned.brownout_requests > 0, "brown-out must engage");
    assert!(
        browned.admitted > strict.admitted,
        "brown-out admitted {} vs strict {}",
        browned.admitted,
        strict.admitted
    );
    assert!(browned.rejected < strict.rejected);
    assert!(strict.conserved() && browned.conserved());
}

/// Queue-wait timeouts expire waiting requests explicitly, and the
/// ledger still balances.
#[test]
fn timeouts_expire_queued_requests_explicitly() {
    let plan = FleetFaultPlan {
        timeout_cycles: Some(10_000),
        ..FleetFaultPlan::default()
    };
    let mut config = fault_config(plan, 3);
    config.load.process = ArrivalProcess::OpenPoisson {
        mean_interarrival_cycles: 500.0,
    };
    config.instances = 1;
    let report = serve(&config, &[m64()]).expect("valid config");
    assert!(report.timed_out > 0, "pressure must exceed the wait budget");
    assert_eq!(report.lost(), 0);
    assert!(report.conserved());
}
