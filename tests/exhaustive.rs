//! Exhaustive small-space verification: for narrow bitwidths the entire
//! operand space is checked, turning statistical accuracy claims into
//! total ones.

use usystolic::arch::UnaryRow;
use usystolic::unary::coding::Coding;
use usystolic::unary::div::divide;
use usystolic::unary::rng::{NumberSource, SobolSource};
use usystolic::unary::{stream_len, SignMagnitude};

/// The uMUL error is at most ~2 counts for EVERY 6-bit operand pair
/// (32 × 32 magnitude combinations, both codings).
#[test]
fn umul_exhaustive_6bit() {
    let bitwidth = 6u32;
    let len = stream_len(bitwidth); // 32
    for coding in [Coding::Rate, Coding::Temporal] {
        let mut worst = 0.0f64;
        for i in 0..=len {
            for w in 0..=len {
                let mut row = UnaryRow::new(
                    bitwidth,
                    SignMagnitude {
                        negative: false,
                        magnitude: i,
                    },
                    vec![SignMagnitude {
                        negative: false,
                        magnitude: w,
                    }],
                    coding,
                );
                let count = row.run_fast(len)[0] as f64;
                let exact = (i * w) as f64 / len as f64;
                worst = worst.max((count - exact).abs());
            }
        }
        assert!(
            worst <= 2.0,
            "{coding:?}: worst-case uMUL error {worst} counts over the full 6-bit space"
        );
    }
}

/// Signed products are exact in sign for every quadrant of the 5-bit
/// space (no sign flips from the sign-magnitude steering).
#[test]
fn sign_steering_exhaustive_5bit() {
    let bitwidth = 5u32;
    let len = stream_len(bitwidth) as i64; // 16
    for i in -len..=len {
        for w in -len..=len {
            let mut row = UnaryRow::new(
                bitwidth,
                SignMagnitude::from_signed(i, bitwidth),
                vec![SignMagnitude::from_signed(w, bitwidth)],
                Coding::Rate,
            );
            let count = row.run_fast(len as u64)[0];
            let product = i * w;
            if product > 2 * len {
                assert!(count > 0, "i={i} w={w}: count {count} lost the sign");
            }
            if product < -2 * len {
                assert!(count < 0, "i={i} w={w}: count {count} lost the sign");
            }
        }
    }
}

/// Rate coding is exact over a full period for every magnitude at every
/// supported small bitwidth and Sobol dimension.
#[test]
fn rate_coding_exhaustive() {
    for bitwidth in 2..=8u32 {
        let len = stream_len(bitwidth);
        for dim in 0..4usize {
            for magnitude in 0..=len {
                let mut src = SobolSource::dimension(dim, bitwidth - 1);
                let ones = (0..len).filter(|_| src.next() < magnitude).count() as u64;
                assert_eq!(
                    ones, magnitude,
                    "bitwidth {bitwidth} dim {dim} magnitude {magnitude}"
                );
            }
        }
    }
}

/// CORDIV stays within a bounded error over the complete half-scale
/// divisor space at 6 bits.
#[test]
fn cordiv_exhaustive_6bit() {
    let len = stream_len(6);
    let mut worst = 0.0f64;
    for divisor in (len / 4)..=len {
        for dividend in 0..=divisor {
            let q = divide(dividend, divisor, 6);
            worst = worst.max((q - dividend as f64 / divisor as f64).abs());
        }
    }
    assert!(worst < 0.25, "worst-case CORDIV error {worst}");
}
