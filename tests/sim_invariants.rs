//! Conservation and monotonicity invariants of the timing/memory
//! simulator, checked across a grid of design points and layer shapes.

use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::gemm::GemmConfig;
use usystolic::sim::{ideal_cycles, MemoryHierarchy, Simulator};

fn layer_grid() -> Vec<GemmConfig> {
    vec![
        GemmConfig::matmul(1, 64, 64).expect("valid"),
        GemmConfig::matmul(1, 9216, 4096).expect("valid"),
        GemmConfig::matmul(32, 512, 512).expect("valid"),
        GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).expect("valid"),
        GemmConfig::conv(15, 15, 384, 3, 3, 1, 384).expect("valid"),
        GemmConfig::conv(227, 227, 3, 11, 11, 4, 96).expect("valid"),
        GemmConfig::conv(5, 5, 1, 3, 3, 2, 2).expect("valid"),
    ]
}

fn design_grid() -> Vec<(SystolicConfig, MemoryHierarchy)> {
    let mut out = Vec::new();
    for scheme in ComputingScheme::ALL {
        for (cfg, sram) in [
            (
                SystolicConfig::edge(scheme, 8),
                MemoryHierarchy::edge_with_sram(),
            ),
            (
                SystolicConfig::cloud(scheme, 8),
                MemoryHierarchy::cloud_with_sram(),
            ),
        ] {
            out.push((cfg, sram));
            out.push((cfg, MemoryHierarchy::no_sram()));
        }
    }
    out
}

#[test]
fn runtime_never_beats_ideal() {
    for (cfg, mem) in design_grid() {
        let sim = Simulator::new(cfg, mem);
        for gemm in layer_grid() {
            let r = sim.simulate(&gemm);
            assert!(
                r.timing.runtime_cycles >= r.timing.ideal_cycles,
                "{cfg} {gemm}"
            );
            assert_eq!(
                r.timing.runtime_cycles,
                r.timing.ideal_cycles + r.timing.stall_cycles
            );
        }
    }
}

#[test]
fn dram_bandwidth_never_exceeds_sustained_rate() {
    for (cfg, mem) in design_grid() {
        let sim = Simulator::new(cfg, mem);
        let limit = mem.dram.sustained_bytes_per_cycle() * usystolic::sim::CLOCK_HZ / 1.0e9;
        for gemm in layer_grid() {
            let r = sim.simulate(&gemm);
            assert!(
                r.dram_bandwidth_gbps <= limit * 1.001,
                "{cfg} {gemm}: {} GB/s over the {limit} GB/s DRAM limit",
                r.dram_bandwidth_gbps
            );
        }
    }
}

#[test]
fn removing_sram_never_reduces_dram_traffic() {
    for scheme in ComputingScheme::ALL {
        let cfg = SystolicConfig::edge(scheme, 8);
        for gemm in layer_grid() {
            let with = Simulator::new(cfg, MemoryHierarchy::edge_with_sram()).simulate(&gemm);
            let without = Simulator::new(cfg, MemoryHierarchy::no_sram()).simulate(&gemm);
            assert!(
                without.traffic.dram.total() >= with.traffic.dram.total(),
                "{scheme} {gemm}: no-SRAM traffic {} below with-SRAM {}",
                without.traffic.dram.total(),
                with.traffic.dram.total()
            );
            assert_eq!(without.traffic.sram.total(), 0);
        }
    }
}

#[test]
fn longer_mac_intervals_increase_runtime() {
    for gemm in layer_grid() {
        let mut last = 0u64;
        for cycles in [32u64, 64, 128] {
            let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(cycles)
                .expect("valid cycle count");
            let r = Simulator::new(cfg, MemoryHierarchy::no_sram()).simulate(&gemm);
            assert!(
                r.timing.runtime_cycles > last,
                "{gemm}: {cycles}c runtime {} not above previous {last}",
                r.timing.runtime_cycles
            );
            last = r.timing.runtime_cycles;
        }
    }
}

#[test]
fn ideal_cycles_scale_with_gemm_size() {
    let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
    let small = GemmConfig::matmul(10, 12, 14).expect("valid");
    let big = GemmConfig::matmul(20, 12, 14).expect("valid");
    assert!(ideal_cycles(&big, &cfg) > ideal_cycles(&small, &cfg));
}

#[test]
fn bigger_arrays_do_not_slow_layers_down() {
    // For a fixed compute-bound layer, the cloud array is at least as fast
    // as the edge array under every scheme.
    let gemm = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).expect("valid");
    for scheme in ComputingScheme::ALL {
        let edge = Simulator::new(
            SystolicConfig::edge(scheme, 8),
            MemoryHierarchy::edge_with_sram(),
        )
        .simulate(&gemm);
        let cloud = Simulator::new(
            SystolicConfig::cloud(scheme, 8),
            MemoryHierarchy::cloud_with_sram(),
        )
        .simulate(&gemm);
        assert!(
            cloud.runtime_s <= edge.runtime_s,
            "{scheme}: cloud {} vs edge {}",
            cloud.runtime_s,
            edge.runtime_s
        );
    }
}

#[test]
fn sixteen_bit_layers_move_more_bytes() {
    for scheme in [ComputingScheme::BinaryParallel, ComputingScheme::UnaryRate] {
        let gemm = GemmConfig::conv(15, 15, 64, 3, 3, 1, 64).expect("valid");
        let t8 = Simulator::new(SystolicConfig::edge(scheme, 8), MemoryHierarchy::no_sram())
            .simulate(&gemm);
        let t16 = Simulator::new(SystolicConfig::edge(scheme, 16), MemoryHierarchy::no_sram())
            .simulate(&gemm);
        assert!(
            t16.traffic.dram.total() >= 2 * t8.traffic.dram.total(),
            "{scheme}"
        );
    }
}
