//! Property-based tests for the extension modules: dataflows, jitter
//! slack, stability, CORDIV and the differential checker.

// Gated off by default: proptest is a registry crate and the workspace
// must build with no network access. Enable with
// `--features external-deps` after re-adding `proptest = "1"` to the
// root [dev-dependencies].
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::gemm::GemmConfig;
use usystolic::sim::{ideal_cycles_with, layer_traffic_with, Dataflow, SlackBudget};
use usystolic::unary::coding::encode_unipolar;
use usystolic::unary::rng::SobolSource;
use usystolic::unary::stability::{recommend_ebt, stability};

proptest! {
    /// Both dataflows schedule exactly the same MAC work: streamed ×
    /// stationary × reduction volumes agree with the GEMM's MAC count.
    #[test]
    fn dataflows_conserve_macs(m in 1usize..30, k in 1usize..60, n in 1usize..60) {
        let gemm = GemmConfig::matmul(m, k, n).expect("valid shape");
        prop_assert_eq!(gemm.macs(), (m * k * n) as u64);
        // Compute cycles of each dataflow are at least streamed × mac and
        // finite.
        let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
        for df in [Dataflow::WeightStationary, Dataflow::InputStationary] {
            let c = ideal_cycles_with(&gemm, &cfg, df);
            prop_assert!(c > 0);
        }
    }

    /// Dataflow traffic mirrors: WS weight bytes == IS IFM-once bytes
    /// relation — each dataflow reads its stationary operand exactly once.
    #[test]
    fn stationary_operand_read_once(m in 1usize..20, k in 1usize..40, n in 1usize..40) {
        let gemm = GemmConfig::matmul(m, k, n).expect("valid shape");
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8);
        let ws = layer_traffic_with(&gemm, &cfg, Dataflow::WeightStationary);
        let is = layer_traffic_with(&gemm, &cfg, Dataflow::InputStationary);
        prop_assert_eq!(ws.dram.weight, (k * n) as u64);
        prop_assert_eq!(is.dram.ifm, (m * k) as u64);
        // And the streamed operand is read at least once.
        prop_assert!(ws.dram.ifm >= (m * k) as u64);
        prop_assert!(is.dram.weight >= (k * n) as u64);
    }

    /// Jitter slack: stall is zero up to the tolerated jitter and then
    /// linear; expected stall is monotone in the jitter bound.
    #[test]
    fn jitter_slack_properties(cycles_exp in 0u32..4, jitter in 0u64..300) {
        let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
            .with_mul_cycles(16 << cycles_exp)
            .expect("valid EBT");
        let b = SlackBudget::for_config(&cfg);
        if jitter <= b.tolerated_jitter() {
            prop_assert_eq!(b.stall_for(jitter), 0);
        } else {
            prop_assert_eq!(b.stall_for(jitter), jitter - b.tolerated_jitter());
        }
        prop_assert!(b.expected_stall(jitter) <= b.expected_stall(jitter + 10));
        let r = b.throughput_retention(jitter);
        prop_assert!(r > 0.0 && r <= 1.0);
    }

    /// Stability is monotone in epsilon and bounded in [0, 1].
    #[test]
    fn stability_bounds(magnitude in 0u64..=128, eps in 0.0f64..0.5) {
        let bs = encode_unipolar(magnitude, 8, SobolSource::dimension(0, 7))
            .expect("valid encode");
        let s = stability(&bs, eps);
        prop_assert!((0.0..=1.0).contains(&s.normalized));
        let looser = stability(&bs, eps + 0.1);
        prop_assert!(looser.normalized >= s.normalized - 1e-12);
        // The advisor never exceeds the full bitwidth.
        let ebt = recommend_ebt(&bs, 8, eps);
        prop_assert!((1..=8).contains(&ebt));
    }

    /// CORDIV stays within a coarse bound for representative operands.
    #[test]
    fn cordiv_bounded(divisor in 32u64..=128, frac in 0.0f64..=1.0) {
        let dividend = (frac * divisor as f64).round() as u64;
        let q = usystolic::unary::div::divide(dividend, divisor, 8);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&q));
        prop_assert!(
            (q - dividend as f64 / divisor as f64).abs() < 0.15,
            "{}/{} -> {}", dividend, divisor, q
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The differential checker passes for arbitrary seeds at 8 and 10
    /// bits — the cross-scheme fuzz the crate exposes publicly.
    #[test]
    fn differential_checker_passes(seed in any::<u64>(), wide in any::<bool>()) {
        let bits = if wide { 10 } else { 8 };
        let checks = usystolic::arch::differential_check(seed, bits)
            .expect("check runs");
        for c in checks {
            prop_assert!(
                c.passed,
                "seed {} {}: rmse {} > tol {}", seed, c.scheme, c.rmse, c.tolerance
            );
        }
    }
}
