//! Network-level integration: full model zoo passes through the
//! simulator + hardware stack, with cross-network and cross-scheme
//! consistency checks.

use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::hw::NetworkEvaluation;
use usystolic::models::zoo::{alexnet, mnist_cnn4, resnet18, vgg16};
use usystolic::sim::MemoryHierarchy;

fn eval(
    net_gemms: &[usystolic::gemm::GemmConfig],
    scheme: ComputingScheme,
    cycles: Option<u64>,
) -> NetworkEvaluation {
    let mut cfg = SystolicConfig::edge(scheme, 8);
    if let Some(c) = cycles {
        cfg = cfg.with_mul_cycles(c).expect("valid EBT");
    }
    let mem = if scheme.is_unary() {
        MemoryHierarchy::no_sram()
    } else {
        MemoryHierarchy::edge_with_sram()
    };
    NetworkEvaluation::evaluate(&cfg, &mem, net_gemms)
}

#[test]
fn bigger_networks_take_longer_and_burn_more() {
    // MNIST-CNN4 < AlexNet < VGG16 in MACs, runtime and total energy
    // under a fixed design.
    let nets = [mnist_cnn4(), alexnet(), vgg16()];
    let evals: Vec<NetworkEvaluation> = nets
        .iter()
        .map(|n| eval(&n.gemms(), ComputingScheme::UnaryRate, Some(32)))
        .collect();
    for w in evals.windows(2) {
        assert!(w[0].macs < w[1].macs);
        assert!(w[0].runtime_s < w[1].runtime_s);
        assert!(w[0].total_j < w[1].total_j);
    }
}

#[test]
fn every_zoo_network_runs_under_every_scheme() {
    for net in [mnist_cnn4(), resnet18(), alexnet(), vgg16()] {
        for scheme in ComputingScheme::ALL {
            let ev = eval(&net.gemms(), scheme, None);
            assert_eq!(ev.layers.len(), net.layers.len(), "{} {scheme}", net.name);
            assert!(ev.runtime_s > 0.0);
            assert!(ev.on_chip_power_w() > 0.0);
            for l in &ev.layers {
                assert!(l.report.utilization > 0.0 && l.report.utilization <= 1.0);
            }
        }
    }
}

#[test]
fn unary_on_chip_power_wins_on_every_network() {
    for net in [mnist_cnn4(), resnet18(), alexnet(), vgg16()] {
        let bp = eval(&net.gemms(), ComputingScheme::BinaryParallel, None);
        let ur = eval(&net.gemms(), ComputingScheme::UnaryRate, Some(64));
        assert!(
            ur.on_chip_power_w() < bp.on_chip_power_w() / 10.0,
            "{}: UR {} W vs BP {} W",
            net.name,
            ur.on_chip_power_w(),
            bp.on_chip_power_w()
        );
    }
}

#[test]
fn early_termination_scales_runtime_across_networks() {
    for net in [mnist_cnn4(), alexnet()] {
        let e32 = eval(&net.gemms(), ComputingScheme::UnaryRate, Some(32));
        let e128 = eval(&net.gemms(), ComputingScheme::UnaryRate, Some(128));
        let ratio = e128.runtime_s / e32.runtime_s;
        assert!(
            (2.5..4.5).contains(&ratio),
            "{}: runtime ratio {ratio} should be near 129/33",
            net.name
        );
    }
}

#[test]
fn resnet18_conv_dominates_its_runtime() {
    let net = resnet18();
    let ev = eval(&net.gemms(), ComputingScheme::UnaryRate, Some(64));
    let fc_runtime: f64 = net
        .layers
        .iter()
        .zip(&ev.layers)
        .filter(|(l, _)| l.name.starts_with("FC"))
        .map(|(_, e)| e.report.runtime_s)
        .sum();
    assert!(
        fc_runtime < 0.05 * ev.runtime_s,
        "ResNet18 FC runtime {fc_runtime} vs total {}",
        ev.runtime_s
    );
}
