//! Serialisation coverage for the data-structure types (C-SERDE).
//!
//! The workspace is hermetic (no registry crates), so structured export
//! goes through `usystolic::obs::ToJson` instead of `serde::Serialize`.
//! These tests pin the capability: every experiment-facing record renders
//! to JSON that the in-repo parser accepts back (a true round-trip), and
//! the rendered objects expose the fields downstream tooling keys on.

use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::gemm::GemmConfig;
use usystolic::hw::evaluate_layer;
use usystolic::obs::{JsonValue, ToJson};
use usystolic::sim::MemoryHierarchy;

/// Renders `value` and parses it back, failing on malformed output.
fn round_trip<T: ToJson>(value: &T) -> JsonValue {
    let text = value.to_json_string();
    JsonValue::parse(&text)
        .unwrap_or_else(|e| panic!("emitted JSON failed to re-parse: {e} in {text}"))
}

#[test]
fn evaluation_records_round_trip_through_json() {
    let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
        .with_mul_cycles(64)
        .expect("valid EBT");
    let mem = MemoryHierarchy::no_sram();
    let gemm = GemmConfig::conv(9, 9, 4, 3, 3, 1, 8).expect("valid layer");
    let ev = evaluate_layer(&cfg, &mem, &gemm);

    // Every experiment-facing record emits re-parseable JSON.
    round_trip(&cfg);
    round_trip(&mem);
    round_trip(&gemm);
    round_trip(&ev.report);
    round_trip(&ev.energy);
    round_trip(&ev.power);
    round_trip(&ev.area);
    let parsed = round_trip(&ev);

    // The rendered evaluation keeps the fields experiment tooling keys on.
    let report = parsed.get("report").expect("report field");
    let macs = report
        .get("macs")
        .and_then(JsonValue::as_u64)
        .expect("macs field");
    assert_eq!(macs, gemm.macs());
    let timing = report.get("timing").expect("timing field");
    for field in ["ideal_cycles", "stall_cycles", "runtime_cycles"] {
        assert!(
            timing.get(field).and_then(JsonValue::as_u64).is_some(),
            "missing {field}"
        );
    }
    assert!(parsed
        .get("energy")
        .and_then(|e| e.get("total_j"))
        .is_some());

    // Rendering is deterministic: same value, byte-identical JSON.
    assert_eq!(ev.to_json_string(), ev.to_json_string());
}

#[test]
fn config_types_round_trip_through_json() {
    assert_eq!(ComputingScheme::UnaryTemporal.to_json_string(), "\"UT\"");
    round_trip(&usystolic::unary::EarlyTermination::full(8));
    assert_eq!(
        usystolic::unary::coding::Polarity::Bipolar.to_json_string(),
        "\"bipolar\""
    );
    round_trip(&usystolic::unary::coding::Coding::Rate);
    round_trip(&usystolic::sim::Variable::Ifm);
    let net = usystolic::models::zoo::alexnet();
    let parsed = round_trip(&net);
    let layers = parsed
        .get("layers")
        .and_then(JsonValue::as_array)
        .expect("layers array");
    assert_eq!(layers.len(), net.layers.len());
}
