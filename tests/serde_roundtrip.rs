//! Serialisation coverage for the data-structure types (C-SERDE).
//!
//! No JSON backend is among the allowed dependencies, so these tests pin
//! the *capability*: every experiment-facing record implements
//! `serde::Serialize` (checked at compile time through a generic bound)
//! and copies are value-identical (no hidden interior state that a
//! round-trip would lose).

use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::gemm::GemmConfig;
use usystolic::hw::evaluate_layer;
use usystolic::sim::MemoryHierarchy;

fn assert_serializable<T: serde::Serialize>(_: &T) {}

#[test]
fn evaluation_records_are_serializable_and_stable() {
    let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
        .with_mul_cycles(64)
        .expect("valid EBT");
    let mem = MemoryHierarchy::no_sram();
    let gemm = GemmConfig::conv(9, 9, 4, 3, 3, 1, 8).expect("valid layer");
    let ev = evaluate_layer(&cfg, &mem, &gemm);

    // Every experiment-facing record implements Serialize.
    assert_serializable(&cfg);
    assert_serializable(&mem);
    assert_serializable(&gemm);
    assert_serializable(&ev);
    assert_serializable(&ev.report);
    assert_serializable(&ev.energy);
    assert_serializable(&ev.power);
    assert_serializable(&ev.area);

    // Clones are value-identical (no hidden interior state).
    let copy = ev;
    assert_eq!(format!("{ev:?}"), format!("{copy:?}"));
}

#[test]
fn config_types_are_serializable() {
    assert_serializable(&ComputingScheme::UnaryTemporal);
    assert_serializable(&usystolic::unary::EarlyTermination::full(8));
    assert_serializable(&usystolic::unary::coding::Polarity::Bipolar);
    assert_serializable(&usystolic::unary::coding::Coding::Rate);
    assert_serializable(&usystolic::sim::Variable::Ifm);
    let net = usystolic::models::zoo::alexnet();
    assert_serializable(&net);
}
