//! Property tests for the auxiliary public APIs: skew FIFOs, padding,
//! CSV tables and the confusion matrix.

// Gated off by default: proptest is a registry crate and the workspace
// must build with no network access. Enable with
// `--features external-deps` after re-adding `proptest = "1"` to the
// root [dev-dependencies].
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use usystolic::arch::{DelayLine, SkewBank, SkewOrder};
use usystolic::gemm::pad::{pad_feature_map, padded_conv};
use usystolic::gemm::FeatureMap;
use usystolic::models::dataset::{Dataset, CLASSES};
use usystolic::models::ConfusionMatrix;

proptest! {
    /// A delay line is exactly a `depth`-shift of its input.
    #[test]
    fn delay_line_shifts(depth in 0usize..16, data in proptest::collection::vec(any::<i32>(), 1..64)) {
        let mut line = DelayLine::new(depth, 0i32);
        let out: Vec<i32> = data.iter().map(|&v| line.push(v)).collect();
        for (i, &o) in out.iter().enumerate() {
            if i < depth {
                prop_assert_eq!(o, 0);
            } else {
                prop_assert_eq!(o, data[i - depth]);
            }
        }
    }

    /// Ascending-then-descending skew banks are an identity with
    /// `lanes − 1` latency, for arbitrary lane counts and payloads.
    #[test]
    fn skew_unskew_identity(lanes in 1usize..10, frames in 1usize..12, seed in any::<u32>()) {
        let mut skew = SkewBank::new(lanes, SkewOrder::Ascending, 0i64);
        let mut unskew = SkewBank::new(lanes, SkewOrder::Descending, 0i64);
        let vectors: Vec<Vec<i64>> = (0..frames)
            .map(|f| (0..lanes).map(|l| i64::from(seed) + (f * lanes + l) as i64).collect())
            .collect();
        let mut outs = Vec::new();
        for v in &vectors {
            outs.push(unskew.push(&skew.push(v)));
        }
        for _ in 0..lanes.saturating_sub(1) {
            outs.push(unskew.push(&skew.push(&vec![0; lanes])));
        }
        for (f, v) in vectors.iter().enumerate() {
            prop_assert_eq!(&outs[f + lanes - 1], v, "frame {}", f);
        }
    }

    /// Padding preserves every interior element and adds an exact zero
    /// border; the padded conv config reproduces the standard output size.
    #[test]
    fn padding_properties(h in 1usize..8, w in 1usize..8, c in 1usize..4, pad in 0usize..4) {
        let fm = FeatureMap::from_fn(h, w, c, |hh, ww, cc| (hh * 100 + ww * 10 + cc) as i64 + 1);
        let p = pad_feature_map(&fm, pad);
        prop_assert_eq!(p.height(), h + 2 * pad);
        prop_assert_eq!(p.width(), w + 2 * pad);
        for hh in 0..h {
            for ww in 0..w {
                for cc in 0..c {
                    prop_assert_eq!(p[(hh + pad, ww + pad, cc)], fm[(hh, ww, cc)]);
                }
            }
        }
        // Border sums to zero.
        let interior: i64 = fm.as_slice().iter().sum();
        let total: i64 = p.as_slice().iter().sum();
        prop_assert_eq!(interior, total);
        // Config formula.
        if h >= 3 && w >= 3 {
            let cfg = padded_conv(h, w, c, 3, 3, 1, pad, 2).expect("valid");
            prop_assert_eq!(cfg.output_height(), (h + 2 * pad - 3) + 1);
        }
    }

    /// CSV output always has `rows + 2` lines and a stable column count.
    #[test]
    fn csv_is_rectangular(rows in 0usize..10, cols in 1usize..6) {
        use usystolic_bench::Table;
        let headers: Vec<String> = (0..cols).map(|c| format!("h{c}")).collect();
        let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new("prop", &refs);
        for r in 0..rows {
            t.push_row((0..cols).map(|c| format!("{r}:{c}")).collect());
        }
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        prop_assert_eq!(lines.len(), rows + 2);
        for line in &lines[1..] {
            prop_assert_eq!(line.split(',').count(), cols);
        }
    }

    /// The confusion matrix conserves sample counts and its accuracy
    /// equals the fraction of fixed-point predictions that match.
    #[test]
    fn confusion_matrix_conserves(per_class in 1usize..6, offset in 0usize..10) {
        let d = Dataset::generate(per_class, 0.1, 7);
        let cm = ConfusionMatrix::build(&d, |s| (s.label + offset) % CLASSES);
        let total: u32 = (0..CLASSES)
            .flat_map(|t| (0..CLASSES).map(move |p| (t, p)))
            .map(|(t, p)| cm.count(t, p))
            .sum();
        prop_assert_eq!(total as usize, d.len());
        let expect = if offset % CLASSES == 0 { 1.0 } else { 0.0 };
        prop_assert!((cm.accuracy() - expect).abs() < 1e-12);
    }
}
