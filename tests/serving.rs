//! Tier-1 contracts of the serving subsystem (`crates/serve`):
//!
//! * determinism — one seed produces identical per-request timelines for
//!   any worker count and on repeated runs;
//! * admission — the bounded queue never exceeds its capacity and
//!   rejects explicitly under overload;
//! * deadlines — the missed counter matches a closed-form oracle on a
//!   constant-service `D/D/1` workload;
//! * percentiles — the streaming histogram matches a sorted-vector
//!   nearest-rank reference on real report data.

use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::gemm::GemmConfig;
use usystolic::serve::loadgen::{ArrivalProcess, LoadGenConfig};
use usystolic::serve::{
    serve, CycleHistogram, FleetFaultPlan, LayerProfile, ServeConfig, ServeReport, Workload,
    WorkloadProfile,
};
use usystolic::sim::MemoryHierarchy;

fn m64() -> Workload {
    Workload::from_gemm("m64", GemmConfig::matmul(64, 64, 64).unwrap())
}

fn base_config(process: ArrivalProcess, seed: u64) -> ServeConfig {
    ServeConfig {
        array: SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
        memory: MemoryHierarchy::edge_with_sram(),
        instances: 2,
        queue_capacity: 32,
        max_batch: 4,
        workers: 1,
        duration_cycles: 400_000,
        load: LoadGenConfig {
            process,
            seed,
            classes: 1,
            high_priority_fraction: 0.25,
            deadline_cycles: Some(50_000),
        },
        faults: FleetFaultPlan::default(),
        fidelity: usystolic::serve::Fidelity::CycleAccurate,
    }
}

fn poisson(mean: f64) -> ArrivalProcess {
    ArrivalProcess::OpenPoisson {
        mean_interarrival_cycles: mean,
    }
}

/// One seed ⇒ one result, bit for bit, whatever the worker count. The
/// worker pool only parallelises pure phases, so `workers` must never
/// change a single per-request timeline.
#[test]
fn fixed_seed_is_deterministic_across_worker_counts() {
    let workloads = [
        m64(),
        Workload::from_gemm("m128", GemmConfig::matmul(128, 64, 64).unwrap()),
    ];
    let run = |workers: usize| -> ServeReport {
        let mut config = base_config(poisson(2_000.0), 7);
        config.workers = workers;
        serve(&config, &workloads).expect("valid config")
    };
    let one = run(1);
    assert!(one.completed > 0, "workload must actually serve requests");
    for workers in [2, 4, 8] {
        let other = run(workers);
        // Identical per-request timelines, in the same order...
        assert_eq!(one.records, other.records, "workers={workers}");
        // ...and identical derived statistics.
        assert_eq!(one.latency, other.latency, "workers={workers}");
        assert_eq!(one.queue_wait, other.queue_wait, "workers={workers}");
        assert_eq!(one.service, other.service, "workers={workers}");
        assert_eq!(one.deadline_missed, other.deadline_missed);
        assert_eq!(one.instance_busy_cycles, other.instance_busy_cycles);
    }
    // Repeated runs reproduce too; a different seed does not.
    assert_eq!(run(4).records, one.records);
    let mut reseeded = base_config(poisson(2_000.0), 8);
    reseeded.workers = 4;
    let other_seed = serve(&reseeded, &workloads).expect("valid config");
    assert_ne!(one.records, other_seed.records);
}

/// Overload: the admission queue never grows past its bound, rejections
/// are explicit and non-zero, and the request ledger balances.
#[test]
fn admission_bounds_the_queue_under_overload() {
    let mut config = base_config(poisson(50.0), 3); // ~8000 arrivals/400k cycles
    config.queue_capacity = 16;
    config.instances = 1;
    let report = serve(&config, &[m64()]).expect("valid config");
    assert!(report.rejected > 0, "overload must reject");
    assert!(
        report.max_queue_depth <= config.queue_capacity,
        "{} > {}",
        report.max_queue_depth,
        config.queue_capacity
    );
    assert_eq!(report.offered, report.admitted + report.rejected);
    assert_eq!(report.admitted, report.completed, "admitted work drains");
    assert_eq!(
        u64::try_from(report.records.len()).unwrap(),
        report.offered,
        "one record per offered request"
    );
}

/// Constant-service `D/D/1` oracle: uniform arrivals every `T ≥ S` with a
/// single class, one instance and batch 1 make every latency exactly the
/// closed-form service time `S`, so the deadline-missed counter is all-
/// or-nothing around `S`.
#[test]
fn deadline_misses_match_the_constant_service_oracle() {
    let array = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
    let memory = MemoryHierarchy::edge_with_sram();
    let workload = m64();
    let profile = WorkloadProfile::from_layers(
        &workload.name,
        &[LayerProfile::compute(&workload.layers[0], &array, &memory)],
        &memory,
    );
    let service = profile.service_cycles(1, 1);
    let interval = service + 100; // T ≥ S: no queueing ever builds up
    let arrivals = 100_000u64.div_ceil(interval); // arrivals in the horizon

    let run = |deadline: Option<u64>| -> ServeReport {
        let config = ServeConfig {
            array,
            memory,
            instances: 1,
            queue_capacity: 4,
            max_batch: 1,
            workers: 2,
            duration_cycles: 100_000,
            load: LoadGenConfig {
                process: ArrivalProcess::OpenUniform {
                    interval_cycles: interval,
                },
                seed: 1,
                classes: 1,
                high_priority_fraction: 0.0,
                deadline_cycles: deadline,
            },
            faults: FleetFaultPlan::default(),
            fidelity: usystolic::serve::Fidelity::CycleAccurate,
        };
        serve(&config, std::slice::from_ref(&workload)).expect("valid config")
    };

    // Sanity: every request completes with latency exactly S.
    let baseline = run(None);
    assert_eq!(baseline.completed, arrivals);
    assert_eq!(baseline.rejected, 0);
    assert_eq!(baseline.latency.p50_cycles, service);
    assert_eq!(baseline.latency.p99_cycles, service);
    assert_eq!(baseline.latency.max_cycles, service);
    assert_eq!(baseline.deadline_missed, 0);

    // Deadline one cycle short of S: every request misses.
    assert_eq!(run(Some(service - 1)).deadline_missed, arrivals);
    // Deadline exactly S: none miss (completion == deadline is on time).
    assert_eq!(run(Some(service)).deadline_missed, 0);
}

/// The report's percentile summaries agree with a sorted-vector
/// nearest-rank reference recomputed from the raw per-request records.
#[test]
fn report_percentiles_match_sorted_vector_reference() {
    let config = base_config(poisson(600.0), 11);
    let report = serve(&config, &[m64()]).expect("valid config");
    assert!(report.completed > 100, "need a non-trivial sample");

    let mut latencies: Vec<u64> = report
        .records
        .iter()
        .filter_map(|r| r.latency_cycles())
        .collect();
    latencies.sort_unstable();
    let reference = |p: f64| -> u64 {
        let rank = ((p / 100.0 * latencies.len() as f64).ceil() as usize).max(1);
        latencies[rank - 1]
    };
    assert_eq!(report.latency.count, latencies.len() as u64);
    assert_eq!(report.latency.p50_cycles, reference(50.0));
    assert_eq!(report.latency.p95_cycles, reference(95.0));
    assert_eq!(report.latency.p99_cycles, reference(99.0));
    assert_eq!(report.latency.max_cycles, *latencies.last().unwrap());

    // And the standalone histogram agrees sample by sample.
    let mut h = CycleHistogram::new();
    for &v in &latencies {
        h.observe(v);
    }
    for p in [10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
        assert_eq!(h.percentile(p), Some(reference(p)), "p{p}");
    }
}

/// Closed-loop load self-throttles: offered load tracks completions, so
/// a bounded client population cannot overload the admission queue.
#[test]
fn closed_loop_never_rejects_with_enough_queue() {
    let mut config = base_config(
        ArrivalProcess::ClosedLoop {
            clients: 8,
            think_cycles: 500,
        },
        5,
    );
    config.queue_capacity = 8; // exactly the client population
    let report = serve(&config, &[m64()]).expect("valid config");
    assert!(report.completed > 0);
    assert_eq!(report.rejected, 0, "at most one outstanding per client");
    assert!(report.max_queue_depth <= 8);
}
