//! Conservation and monotonicity invariants of the hardware cost models,
//! swept across schemes, bitwidths and shapes.

use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::gemm::GemmConfig;
use usystolic::hw::{evaluate_layer, ArrayArea, OnChipArea, PeComponents};
use usystolic::sim::MemoryHierarchy;

#[test]
fn area_grows_with_bitwidth_for_every_scheme() {
    for scheme in ComputingScheme::ALL {
        let mut last = 0.0;
        for bits in [4u32, 8, 12, 16] {
            let a = ArrayArea::for_config(&SystolicConfig::edge(scheme, bits)).total_mm2();
            assert!(a > last, "{scheme} at {bits} bits: {a} vs {last}");
            last = a;
        }
    }
}

#[test]
fn area_scales_with_pe_count() {
    for scheme in ComputingScheme::ALL {
        let edge = ArrayArea::for_config(&SystolicConfig::edge(scheme, 8)).total_mm2();
        let cloud = ArrayArea::for_config(&SystolicConfig::cloud(scheme, 8)).total_mm2();
        let ratio = cloud / edge;
        let pe_ratio = (256.0 * 256.0) / (12.0 * 14.0);
        // Per-PE areas differ slightly between shapes (leftmost-column
        // amortisation), so the ratio brackets the PE ratio loosely.
        assert!(
            ratio > pe_ratio * 0.7 && ratio < pe_ratio * 1.3,
            "{scheme}: area ratio {ratio} vs PE ratio {pe_ratio}"
        );
    }
}

#[test]
fn pe_breakdown_components_are_positive() {
    for scheme in ComputingScheme::ALL {
        for bits in [4u32, 8, 16] {
            let pe = PeComponents::for_config(&SystolicConfig::edge(scheme, bits));
            assert!(pe.ireg_ge > 0.0, "{scheme} {bits}");
            assert!(pe.wreg_ge > 0.0, "{scheme} {bits}");
            assert!(pe.mul_ge > 0.0, "{scheme} {bits}");
            assert!(pe.acc_ge > 0.0, "{scheme} {bits}");
            let sum = pe.ireg_ge + pe.wreg_ge + pe.mul_ge + pe.acc_ge;
            assert!((sum - pe.total_ge()).abs() < 1e-9);
        }
    }
}

#[test]
fn energy_components_conserve() {
    let gemm = GemmConfig::conv(13, 13, 32, 3, 3, 1, 48).expect("valid layer");
    for scheme in ComputingScheme::ALL {
        for mem in [
            MemoryHierarchy::edge_with_sram(),
            MemoryHierarchy::no_sram(),
        ] {
            let cfg = SystolicConfig::edge(scheme, 8);
            let ev = evaluate_layer(&cfg, &mem, &gemm);
            let e = ev.energy;
            assert!(
                (e.on_chip_j() - e.sa_j() - e.sram_j()).abs() < 1e-15,
                "{scheme}"
            );
            assert!((e.total_j() - e.on_chip_j() - e.dram_dynamic_j).abs() < 1e-15);
            if !mem.has_sram() {
                assert_eq!(e.sram_j(), 0.0, "{scheme}: SRAM energy without SRAM");
            }
            // Power × runtime ≡ energy.
            let p = ev.power;
            assert!((p.total_w() * ev.report.runtime_s - e.total_j()).abs() / e.total_j() < 1e-9);
        }
    }
}

#[test]
fn efficiency_is_reciprocal_consistent() {
    let gemm = GemmConfig::matmul(4, 96, 64).expect("valid layer");
    let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8);
    let mem = MemoryHierarchy::no_sram();
    let ev = evaluate_layer(&cfg, &mem, &gemm);
    // power_eff = throughput / power = 1 / energy.
    let expect = 1.0 / ev.energy.on_chip_j();
    assert!(
        (ev.on_chip_efficiency.power_eff - expect).abs() / expect < 1e-9,
        "{} vs {}",
        ev.on_chip_efficiency.power_eff,
        expect
    );
    // energy_eff = throughput / energy.
    let expect = ev.report.throughput_per_s / ev.energy.on_chip_j();
    assert!((ev.on_chip_efficiency.energy_eff - expect).abs() / expect < 1e-9);
}

#[test]
fn leakage_energy_scales_with_runtime() {
    // Same design, bigger layer → proportionally more leakage energy.
    let cfg = SystolicConfig::edge(ComputingScheme::UnaryRate, 8);
    let mem = MemoryHierarchy::no_sram();
    let small = GemmConfig::matmul(4, 24, 28).expect("valid layer");
    let large = GemmConfig::matmul(8, 24, 28).expect("valid layer");
    let e_small = evaluate_layer(&cfg, &mem, &small);
    let e_large = evaluate_layer(&cfg, &mem, &large);
    let ratio_runtime = e_large.report.runtime_s / e_small.report.runtime_s;
    let ratio_leak = e_large.energy.sa_leakage_j / e_small.energy.sa_leakage_j;
    assert!((ratio_runtime - ratio_leak).abs() < 1e-9);
}

#[test]
fn on_chip_area_includes_sram_iff_present() {
    let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
    let with = OnChipArea::for_config(&cfg, &MemoryHierarchy::edge_with_sram());
    let without = OnChipArea::for_config(&cfg, &MemoryHierarchy::no_sram());
    assert!(with.sram_mm2 > 0.0);
    assert_eq!(without.sram_mm2, 0.0);
    assert!(
        (with.total_mm2() - without.total_mm2() - with.sram_mm2).abs() < 1e-12,
        "SA area must be memory-independent"
    );
}

#[test]
fn custom_sram_capacities_interpolate() {
    // Area grows monotonically across the §V-G capacity sweep.
    let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
    let mut last = -1.0;
    for bytes in [0u64, 16 << 10, 64 << 10, 1 << 20, 8 << 20] {
        let area =
            OnChipArea::for_config(&cfg, &MemoryHierarchy::with_sram_capacity(bytes)).total_mm2();
        assert!(area > last, "{bytes} bytes: {area} vs {last}");
        last = area;
    }
}
