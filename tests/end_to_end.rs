//! Cross-crate integration tests: full GEMMs through every computing
//! scheme, checked against the exact reference, plus network-level
//! simulation consistency.

use usystolic::arch::{ComputingScheme, GemmExecutor, SystolicConfig};
use usystolic::gemm::loopnest::gemm_reference;
use usystolic::gemm::stats::ErrorStats;
use usystolic::gemm::{FeatureMap, GemmConfig, WeightSet};
use usystolic::hw::evaluate_network;
use usystolic::models::zoo::alexnet;
use usystolic::sim::MemoryHierarchy;

fn test_case(seed: u64) -> (GemmConfig, FeatureMap<f64>, WeightSet<f64>) {
    let gemm = GemmConfig::conv(7, 7, 3, 3, 3, 1, 5).expect("valid test shape");
    let s = seed as usize;
    let input = FeatureMap::from_fn(7, 7, 3, |h, w, c| {
        (((h * 31 + w * 17 + c * 7 + s) % 29) as f64 / 14.5) - 1.0
    });
    let weights = WeightSet::from_fn(5, 3, 3, 3, |oc, wh, ww, ic| {
        ((((oc * 19 + wh * 11 + ww * 5 + ic * 3 + s) % 23) as f64 / 23.0) - 0.5) * 0.7
    });
    (gemm, input, weights)
}

#[test]
fn all_schemes_track_the_reference_end_to_end() {
    let (gemm, input, weights) = test_case(1);
    let reference = gemm_reference(&gemm, &input, &weights).expect("shapes match");
    let scale = reference
        .as_slice()
        .iter()
        .fold(0.0f64, |m, &x| m.max(x.abs()));
    for scheme in ComputingScheme::ALL {
        let cfg = SystolicConfig::new(8, 5, scheme, 8).expect("valid configuration");
        let out = GemmExecutor::new(cfg)
            .execute(&gemm, &input, &weights)
            .expect("execution succeeds");
        let err =
            ErrorStats::compare(reference.as_slice(), out.output.as_slice()).expect("equal shapes");
        assert!(
            err.rmse() < 0.15 * scale,
            "{scheme}: rmse {} vs scale {scale}",
            err.rmse()
        );
    }
}

#[test]
fn array_shape_does_not_change_results() {
    // Folding is value-preserving for every scheme: a 3×2 array computes
    // exactly what a 16×16 array computes.
    let (gemm, input, weights) = test_case(2);
    for scheme in ComputingScheme::ALL {
        let small =
            GemmExecutor::new(SystolicConfig::new(3, 2, scheme, 8).expect("valid configuration"))
                .execute(&gemm, &input, &weights)
                .expect("small array executes");
        let large =
            GemmExecutor::new(SystolicConfig::new(16, 16, scheme, 8).expect("valid configuration"))
                .execute(&gemm, &input, &weights)
                .expect("large array executes");
        let diff = small
            .output
            .as_slice()
            .iter()
            .zip(large.output.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-9, "{scheme}: max diff {diff}");
    }
}

#[test]
fn wider_data_improves_every_scheme() {
    let (gemm, input, weights) = test_case(3);
    let reference = gemm_reference(&gemm, &input, &weights).expect("shapes match");
    for scheme in [
        ComputingScheme::BinaryParallel,
        ComputingScheme::UnaryRate,
        ComputingScheme::UnaryTemporal,
    ] {
        let rmse_at = |bits: u32| {
            let cfg = SystolicConfig::new(8, 5, scheme, bits).expect("valid configuration");
            let out = GemmExecutor::new(cfg)
                .execute(&gemm, &input, &weights)
                .expect("execution succeeds");
            ErrorStats::compare(reference.as_slice(), out.output.as_slice())
                .expect("equal shapes")
                .rmse()
        };
        let narrow = rmse_at(6);
        let wide = rmse_at(10);
        assert!(
            wide < narrow,
            "{scheme}: 10-bit rmse {wide} should beat 6-bit {narrow}"
        );
    }
}

#[test]
fn alexnet_evaluates_under_every_design() {
    // A smoke pass of the full hardware stack over all 8 AlexNet layers.
    let layers = alexnet().gemms();
    for scheme in ComputingScheme::ALL {
        let cfg = SystolicConfig::edge(scheme, 8);
        let memory = if scheme.is_unary() {
            MemoryHierarchy::no_sram()
        } else {
            MemoryHierarchy::edge_with_sram()
        };
        let evals = evaluate_network(&cfg, &memory, &layers);
        assert_eq!(evals.len(), 8);
        for (ev, gemm) in evals.iter().zip(&layers) {
            assert!(ev.report.runtime_s > 0.0, "{scheme} {gemm}");
            assert!(ev.energy.total_j() > ev.energy.on_chip_j());
            assert!(ev.power.total_w() > 0.0);
            assert!(ev.report.timing.runtime_cycles >= ev.report.timing.ideal_cycles);
        }
    }
}

#[test]
fn executor_surfaces_shape_errors() {
    let (gemm, input, _) = test_case(4);
    let wrong_weights = WeightSet::<f64>::zeros(5, 2, 2, 3); // wrong kernel
    let exec = GemmExecutor::new(
        SystolicConfig::new(4, 4, ComputingScheme::UnaryRate, 8).expect("valid configuration"),
    );
    assert!(exec.execute(&gemm, &input, &wrong_weights).is_err());
}

#[test]
fn facade_reexports_are_usable() {
    // The facade crate exposes every subsystem under stable names.
    let _ = usystolic::unary::stream_len(8);
    let _ = usystolic::gemm::GemmConfig::matmul(1, 2, 3).expect("valid");
    let _ = usystolic::arch::ComputingScheme::ALL;
    let _ = usystolic::sim::MemoryHierarchy::no_sram();
    let _ = usystolic::hw::tech::GE_AREA_UM2;
    let _ = usystolic::models::mlperf::mlperf_gemms().len();
}
