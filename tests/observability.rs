//! End-to-end observability coverage: trace export shape, counter
//! reconciliation against the simulator's own report, and the
//! instrumented functional path.
//!
//! The zero-overhead (no-session) contract is pinned separately in
//! `crates/obs/tests/noop_overhead.rs` with a counting global allocator.

use usystolic::arch::{ComputingScheme, GemmExecutor, SystolicConfig};
use usystolic::gemm::{FeatureMap, GemmConfig, WeightSet};
use usystolic::obs::{self, JsonValue, ToJson};
use usystolic::sim::{MemoryHierarchy, Simulator};

fn alexnet_conv2() -> GemmConfig {
    GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).unwrap()
}

fn crawling_edge() -> SystolicConfig {
    SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
        .with_mul_cycles(128)
        .unwrap()
}

/// The Chrome `trace_event` export of a simulated layer matches the
/// golden shape `chrome://tracing` / Perfetto require: a `traceEvents`
/// array of objects with `name`/`cat`/`ph`/`ts`/`pid`/`tid`, `dur` on
/// complete spans, and the top-level `displayTimeUnit`.
#[test]
fn chrome_trace_export_has_golden_shape() {
    obs::install(obs::Session::new());
    let sim = Simulator::new(crawling_edge(), MemoryHierarchy::no_sram());
    let report = sim.simulate(&alexnet_conv2());
    let session = obs::take().expect("session installed");

    let parsed = JsonValue::parse(&session.tracer.export_chrome()).expect("valid JSON");
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ms")
    );
    assert!(parsed
        .get("otherData")
        .and_then(|o| o.get("producer"))
        .is_some());

    let events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents");
    assert!(!events.is_empty());
    for ev in events {
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(
                ev.get(key).is_some(),
                "event missing {key}: {}",
                ev.render()
            );
        }
        let ph = ev.get("ph").and_then(JsonValue::as_str).unwrap();
        assert!(["X", "i", "C"].contains(&ph), "unknown phase {ph}");
        if ph == "X" {
            assert!(ev.get("dur").and_then(JsonValue::as_f64).is_some());
        }
    }

    // The layer span sits on the simulated-cycle lane, one tick per
    // cycle, and carries the report's own numbers as args.
    let span = events
        .iter()
        .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .expect("layer span");
    assert_eq!(
        span.get("pid").and_then(JsonValue::as_u64),
        Some(u64::from(obs::PID_SIM))
    );
    assert_eq!(
        span.get("dur").and_then(JsonValue::as_f64),
        Some(report.timing.runtime_cycles as f64)
    );
    assert_eq!(
        span.get("args")
            .and_then(|a| a.get("macs"))
            .and_then(JsonValue::as_u64),
        Some(report.macs)
    );
}

/// The metrics a simulation run accumulates reconcile exactly with the
/// `LayerReport` the same run returns — no double counting anywhere in
/// the traffic/timing/report call chain.
#[test]
fn simulator_counters_reconcile_with_report() {
    obs::install(obs::Session::new());
    let sim = Simulator::new(crawling_edge(), MemoryHierarchy::no_sram());
    let report = sim.simulate(&alexnet_conv2());
    let session = obs::take().expect("session installed");
    let m = &session.metrics;

    assert_eq!(m.counter("sim.layers"), 1);
    assert_eq!(m.counter("sim.macs"), report.macs);
    assert_eq!(m.counter("sim.dram_bytes"), report.traffic.dram.total());
    assert_eq!(m.counter("sim.dram_ifm_bytes"), report.traffic.dram.ifm);
    assert_eq!(
        m.counter("sim.dram_weight_bytes"),
        report.traffic.dram.weight
    );
    assert_eq!(m.counter("sim.dram_ofm_bytes"), report.traffic.dram.ofm);
    assert_eq!(m.counter("sim.sram_bytes"), report.traffic.sram.total());
    assert_eq!(m.counter("sim.ideal_cycles"), report.timing.ideal_cycles);
    assert_eq!(m.counter("sim.stall_cycles"), report.timing.stall_cycles);
    assert_eq!(
        m.counter("sim.runtime_cycles"),
        report.timing.runtime_cycles
    );
    assert_eq!(m.gauge_value("sim.utilization"), Some(report.utilization));
}

/// Counters accumulate across a multi-layer network simulation.
#[test]
fn network_counters_sum_over_layers() {
    obs::install(obs::Session::new());
    let sim = Simulator::new(
        SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
        MemoryHierarchy::edge_with_sram(),
    );
    let layers = [alexnet_conv2(), GemmConfig::matmul(1, 9216, 4096).unwrap()];
    let reports = sim.simulate_network(&layers);
    let session = obs::take().expect("session installed");

    assert_eq!(session.metrics.counter("sim.layers"), reports.len() as u64);
    assert_eq!(
        session.metrics.counter("sim.dram_bytes"),
        reports.iter().map(|r| r.traffic.dram.total()).sum::<u64>()
    );
    assert_eq!(
        session.metrics.counter("sim.runtime_cycles"),
        reports.iter().map(|r| r.timing.runtime_cycles).sum::<u64>()
    );
    // Layer spans abut on the virtual cycle cursor.
    assert_eq!(
        session.sim_cycles,
        session.metrics.counter("sim.runtime_cycles")
    );
}

/// The functional execution path emits wall-clock spans (executor +
/// per-tile) and MAC-window counters that match the returned stats.
#[test]
fn functional_execution_traces_wall_clock_spans() {
    obs::install(obs::Session::new());
    let cfg = SystolicConfig::new(4, 3, ComputingScheme::UnaryRate, 8).unwrap();
    let gemm = GemmConfig::conv(5, 5, 2, 2, 2, 1, 3).unwrap();
    let input = FeatureMap::from_fn(5, 5, 2, |h, w, c| (h + w + c) as f64 * 0.05 - 0.3);
    let weights = WeightSet::from_fn(3, 2, 2, 2, |oc, wh, ww, ic| {
        (oc + wh + ww + ic) as f64 * 0.04 - 0.2
    });
    let outcome = GemmExecutor::new(cfg)
        .execute(&gemm, &input, &weights)
        .unwrap();
    let session = obs::take().expect("session installed");

    assert_eq!(session.metrics.counter("core.gemm_executions"), 1);
    assert_eq!(
        session.metrics.counter("core.mac_windows"),
        outcome.stats.mac_windows
    );
    assert_eq!(
        session.metrics.counter("core.compute_cycles"),
        outcome.stats.compute_cycles
    );

    let spans: Vec<_> = session
        .tracer
        .events()
        .filter(|e| e.pid == obs::PID_WALL && e.ph == obs::Phase::Complete)
        .collect();
    assert!(
        spans.iter().any(|e| e.name.starts_with("gemm.execute")),
        "executor span"
    );
    assert!(
        spans.iter().any(|e| e.name.contains("tile")),
        "per-tile spans"
    );
    for span in spans {
        assert!(span.dur >= 0.0, "negative duration in {}", span.name);
    }
}

/// Histogram bucket boundaries are inclusive at the upper bound and the
/// overflow bucket catches everything beyond the last bound (integration
/// duplicate of the crate-level unit test, exercised through the facade).
#[test]
fn histogram_bucket_boundaries_via_facade() {
    let mut reg = obs::Registry::new();
    reg.register_histogram("lat", &[1.0, 10.0, 100.0]);
    for v in [0.5, 1.0, 1.5, 10.0, 99.9, 100.0, 1000.0] {
        reg.observe("lat", v);
    }
    let h = reg.histogram("lat").unwrap();
    assert_eq!(h.count(), 7);
    // Buckets: (≤1, ≤10, ≤100, overflow) — upper bounds inclusive.
    assert_eq!(h.counts(), &[2, 2, 2, 1]);

    let rendered = h.to_json();
    let counts = rendered
        .get("counts")
        .and_then(JsonValue::as_array)
        .unwrap();
    assert_eq!(counts.len(), 4);
}

// ---------------------------------------------------------------------------
// Fleet-grade telemetry: dimensional metrics, sketches, series, correlation.
// ---------------------------------------------------------------------------

use usystolic::serve::loadgen::{ArrivalProcess, LoadGenConfig};
use usystolic::serve::{serve, FleetFaultPlan, ServeConfig, Workload};

/// An overloaded two-instance pool: enough completions (>600) to push the
/// latency sketch through its compression path, and enough pressure on
/// the bounded queue to produce rejections for the labeled counters.
fn overloaded_pool(workers: usize) -> (ServeConfig, Vec<Workload>) {
    let gemm = GemmConfig::matmul(64, 64, 64).unwrap();
    let workloads = vec![Workload::from_gemm("matmul64", gemm)];
    let config = ServeConfig {
        array: SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
        memory: MemoryHierarchy::edge_with_sram(),
        instances: 2,
        queue_capacity: 8,
        max_batch: 4,
        workers,
        duration_cycles: 4_000_000,
        load: LoadGenConfig {
            process: ArrivalProcess::OpenPoisson {
                mean_interarrival_cycles: 1000.0,
            },
            seed: 7,
            classes: workloads.len(),
            high_priority_fraction: 0.25,
            deadline_cycles: None,
        },
        faults: FleetFaultPlan::default(),
        fidelity: usystolic::serve::Fidelity::CycleAccurate,
    };
    (config, workloads)
}

/// The streaming latency sketch agrees with the exact nearest-rank
/// histogram the serve report computes from the same samples: identical
/// counts, and p50/p95/p99 within the documented 2% relative bound (the
/// t-digest's ≤1% rank error, doubled for rank→value conversion slack).
#[test]
fn serve_latency_sketch_agrees_with_exact_histogram() {
    obs::install(obs::Session::new());
    let (config, workloads) = overloaded_pool(1);
    let report = serve(&config, &workloads).unwrap();
    let session = obs::take().expect("session installed");

    let sketch = session
        .metrics
        .sketch("serve.latency_cycles")
        .expect("latency sketch recorded");
    assert_eq!(sketch.count(), report.latency.count);
    assert!(
        sketch.count() > 600,
        "need enough samples to exercise compression, got {}",
        sketch.count()
    );

    for (p, exact) in [
        (50.0, report.latency.p50_cycles),
        (95.0, report.latency.p95_cycles),
        (99.0, report.latency.p99_cycles),
    ] {
        let approx = sketch.percentile(p).expect("non-empty sketch");
        let err = (approx - exact as f64).abs() / exact as f64;
        assert!(
            err <= 0.02,
            "p{p}: sketch {approx} vs exact {exact} ({:.3}% off)",
            100.0 * err
        );
    }

    // The queue-wait sketch saw every completion too, and the per-class
    // sketch partition adds back up to the unlabeled total.
    let wait = session
        .metrics
        .sketch("serve.queue_wait_cycles")
        .expect("queue-wait sketch");
    assert_eq!(wait.count(), report.queue_wait.count);
    let by_class = session
        .metrics
        .sketch_labeled("serve.latency_cycles", &[("class", "matmul64")])
        .expect("per-class latency sketch");
    assert_eq!(by_class.count(), sketch.count());
}

/// Labeled counters partition their unlabeled totals: rejected and
/// completed split by `{class, priority}` sum back to the report's
/// scalars, and the windowed arrival series preserves every sample.
#[test]
fn serve_labeled_metrics_reconcile_with_report() {
    obs::install(obs::Session::new());
    let (config, workloads) = overloaded_pool(1);
    let report = serve(&config, &workloads).unwrap();
    let session = obs::take().expect("session installed");
    let m = &session.metrics;

    assert!(report.rejected > 0, "test needs an overloaded queue");
    for (name, total) in [
        ("serve.rejected", report.rejected),
        ("serve.completed", report.completed),
    ] {
        let by_label: u64 = ["normal", "high"]
            .iter()
            .map(|prio| m.counter_labeled(name, &[("class", "matmul64"), ("priority", prio)]))
            .sum();
        assert_eq!(by_label, total, "{name} labels must partition the total");
        assert_eq!(m.counter(name), total, "{name} unlabeled total");
    }

    let arrivals = m.series("serve.arrivals").expect("arrival series");
    let seen: f64 = arrivals.iter().map(|(_, b)| b.count as f64).sum();
    assert_eq!(seen as u64, report.offered, "series kept every arrival");
    assert_eq!(arrivals.late_samples(), 0);
    let rejections = m.series("serve.rejections").expect("rejection series");
    let rej: f64 = rejections.iter().map(|(_, b)| b.count as f64).sum();
    assert_eq!(rej as u64, report.rejected);
}

/// The metrics registry — labeled counters, sketches, windowed series and
/// all — renders bit-identically for every worker count: the host pool
/// only parallelises pure phases, so telemetry is part of the
/// determinism contract.
#[test]
fn serve_metrics_bit_identical_across_worker_counts() {
    let mut renders = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        obs::install(obs::Session::new());
        let (config, workloads) = overloaded_pool(workers);
        serve(&config, &workloads).unwrap();
        let session = obs::take().expect("session installed");
        renders.push((workers, session.metrics.to_json().render()));
    }
    let (_, baseline) = &renders[0];
    for (workers, render) in &renders[1..] {
        assert_eq!(
            render, baseline,
            "metrics diverged between workers=1 and workers={workers}"
        );
    }
}

/// Batch spans carry the request correlation a trace viewer needs to
/// reconstruct one request's admission → batch → completion path: the
/// lead request id, the instance (shard), and the full batch id list.
#[test]
fn serve_spans_carry_request_correlation() {
    obs::install(obs::Session::new());
    let (config, workloads) = overloaded_pool(1);
    let report = serve(&config, &workloads).unwrap();
    let session = obs::take().expect("session installed");

    let arg = |span: &obs::TraceEvent, key: &str| {
        span.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let batches: Vec<_> = session
        .tracer
        .events()
        .filter(|e| e.ph == obs::Phase::Complete && e.name.starts_with("batch"))
        .collect();
    assert!(!batches.is_empty(), "batch spans recorded");
    let mut correlated_ids = 0u64;
    for span in &batches {
        let req = arg(span, "req").and_then(|v| v.as_u64()).expect("req arg");
        let shard = arg(span, "shard")
            .and_then(|v| v.as_u64())
            .expect("shard arg");
        assert!((1..=report.instances as u64).contains(&shard));
        let ids = arg(span, "req_ids").expect("req_ids arg");
        let ids = ids.as_array().expect("req_ids array");
        assert_eq!(ids.first().and_then(JsonValue::as_u64), Some(req));
        correlated_ids += ids.len() as u64;
    }
    // Every admitted request appears in exactly one batch span (the ring
    // is large enough for this run to keep them all).
    assert_eq!(correlated_ids, report.admitted);
    assert_eq!(session.tracer.dropped(), 0);

    // Rejection instants carry the rejected request's id too.
    let rejected = session
        .tracer
        .events()
        .find(|e| e.ph == obs::Phase::Instant && e.name == "rejected")
        .expect("rejection instant");
    assert!(arg(rejected, "req").and_then(|v| v.as_u64()).is_some());
}
