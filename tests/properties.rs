//! Property-based tests (proptest) of the core data structures and the
//! arithmetic invariants the paper's accuracy claims rest on.

// Gated off by default: proptest is a registry crate and the workspace
// must build with no network access. Enable with
// `--features external-deps` after re-adding `proptest = "1"` to the
// root [dev-dependencies].
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use usystolic::arch::{ComputingScheme, SystolicConfig, TileMapping, UnaryRow};
use usystolic::gemm::quant::Quantizer;
use usystolic::gemm::GemmConfig;
use usystolic::unary::coding::{encode_unipolar, Coding};
use usystolic::unary::rng::{CounterSource, LfsrSource, NumberSource, SobolSource};
use usystolic::unary::{scc, Bitstream, EarlyTermination, SignMagnitude};

proptest! {
    /// Rate coding over a full Sobol period is exact for every magnitude
    /// and bitwidth — the foundation of the uMUL accuracy.
    #[test]
    fn rate_coding_exact_over_full_period(
        bitwidth in 3u32..=10,
        dim in 0usize..8,
        frac in 0.0f64..=1.0,
    ) {
        let max = usystolic::unary::stream_len(bitwidth);
        let magnitude = (frac * max as f64).round() as u64;
        let bs = encode_unipolar(magnitude, bitwidth, SobolSource::dimension(dim, bitwidth - 1))
            .expect("valid inputs");
        prop_assert_eq!(bs.count_ones(), magnitude);
    }

    /// Every Sobol dimension emits a permutation of its range.
    #[test]
    fn sobol_is_bijective(dim in 0usize..16, width in 2u32..=9) {
        let mut src = SobolSource::dimension(dim, width);
        let mut seen = vec![false; 1 << width];
        for _ in 0..(1u64 << width) {
            let v = src.next() as usize;
            prop_assert!(!seen[v], "value {} repeated", v);
            seen[v] = true;
        }
    }

    /// LFSR sequences never emit zero and repeat with maximal period.
    #[test]
    fn lfsr_period_is_maximal(width in 2u32..=12, seed in 1u64..1000) {
        let mut src = LfsrSource::new(width, seed);
        let first = src.next();
        prop_assert_ne!(first, 0);
        for _ in 1..src.period() {
            prop_assert_ne!(src.next(), 0);
        }
        prop_assert_eq!(src.next(), first, "period must close");
    }

    /// SCC is symmetric and bounded in [-1, 1].
    #[test]
    fn scc_symmetric_and_bounded(bits_a in proptest::collection::vec(any::<bool>(), 8..64),
                                 bits_b_seed in any::<u64>()) {
        let a: Bitstream = bits_a.iter().copied().collect();
        let b: Bitstream = bits_a
            .iter()
            .enumerate()
            .map(|(i, _)| (bits_b_seed >> (i % 64)) & 1 == 1)
            .collect();
        let ab = scc(&a, &b).expect("equal lengths");
        let ba = scc(&b, &a).expect("equal lengths");
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&ab));
    }

    /// Bitstream AND never produces more ones than either operand
    /// (products never exceed their factors in unipolar coding).
    #[test]
    fn and_is_monotone(bits in proptest::collection::vec(any::<(bool, bool)>(), 1..256)) {
        let a: Bitstream = bits.iter().map(|p| p.0).collect();
        let b: Bitstream = bits.iter().map(|p| p.1).collect();
        let p = a.and(&b).expect("equal lengths");
        prop_assert!(p.count_ones() <= a.count_ones());
        prop_assert!(p.count_ones() <= b.count_ones());
    }

    /// Sign-magnitude conversion round-trips for in-range values and the
    /// product sign is the XOR of operand signs.
    #[test]
    fn sign_magnitude_roundtrip(v in -128i64..=128, w in -128i64..=128) {
        let sv = SignMagnitude::from_signed(v, 8);
        let sw = SignMagnitude::from_signed(w, 8);
        prop_assert_eq!(sv.to_signed(), v);
        prop_assert_eq!(sv.product_negative(sw), (v < 0) ^ (w < 0));
    }

    /// The uMUL row (with spatial-temporal reuse) approximates the exact
    /// product within a small count bound for every operand pair.
    #[test]
    fn unary_row_product_is_accurate(i in -128i64..=128, w in -128i64..=128) {
        let mut row = UnaryRow::new(
            8,
            SignMagnitude::from_signed(i, 8),
            vec![SignMagnitude::from_signed(w, 8)],
            Coding::Rate,
        );
        let count = row.run_fast(128)[0];
        let exact = (i * w) as f64 / 128.0;
        prop_assert!(
            (count as f64 - exact).abs() <= 2.5,
            "i={} w={}: {} vs {}", i, w, count, exact
        );
    }

    /// The early-termination shift always recovers the N-bit scale:
    /// scale(x) = x · 2^(N−n).
    #[test]
    fn early_termination_scale_is_shift(n in 1u32..=8, x in -1000i64..1000) {
        let et = EarlyTermination::new(8, n).expect("valid EBT");
        prop_assert_eq!(et.scale(x), x << (8 - n));
        prop_assert_eq!(et.mul_cycles(), 1u64 << (n - 1));
        prop_assert_eq!(et.mac_cycles(), et.mul_cycles() + 1);
    }

    /// Quantisation round-trips within half a step for in-range values.
    #[test]
    fn quantizer_roundtrip(bits in 2u32..=16, x in -1.0f64..=1.0) {
        let q = Quantizer::from_max(bits, 1.0);
        let err = (q.dequantize(q.quantize(x)) - x).abs();
        prop_assert!(err <= 0.5 / (1u64 << (bits - 1)) as f64 + 1e-12);
    }

    /// Tile mapping covers exactly the K×N weight matrix: fold row/column
    /// counts sum back to K and N, and utilisation is in (0, 1].
    #[test]
    fn tile_mapping_covers_gemm(m in 1usize..40, k in 1usize..300, n in 1usize..300,
                                rows in 1usize..32, cols in 1usize..32) {
        let gemm = GemmConfig::matmul(m, k, n).expect("valid");
        let map = TileMapping::new(&gemm, rows, cols);
        let row_sum: usize = (0..map.row_folds()).map(|rf| map.rows_in_fold(rf)).sum();
        let col_sum: usize = (0..map.col_folds()).map(|cf| map.cols_in_fold(cf)).sum();
        prop_assert_eq!(row_sum, k);
        prop_assert_eq!(col_sum, n);
        let u = map.utilization();
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
    }

    /// MAC cycle counts are consistent across schemes: mul + 1 == mac for
    /// everything but binary parallel.
    #[test]
    fn mac_cycle_consistency(bits in 4u32..=12, ebt_frac in 0.2f64..=1.0) {
        let ebt = ((bits as f64 * ebt_frac).ceil() as u32).clamp(1, bits);
        let et = EarlyTermination::new(bits, ebt).expect("valid");
        for scheme in ComputingScheme::ALL {
            let mul = scheme.mul_cycles(bits, et);
            let mac = scheme.mac_cycles(bits, et);
            if scheme == ComputingScheme::BinaryParallel {
                prop_assert_eq!(mac, 1);
            } else {
                prop_assert_eq!(mac, mul + 1, "{}", scheme);
            }
        }
    }

    /// Counters wrap modulo 2^width from any phase.
    #[test]
    fn counter_wraps(width in 1u32..16, phase in any::<u64>()) {
        let mut c = CounterSource::starting_at(width, phase);
        let period = 1u64 << width;
        let first = c.next();
        for _ in 1..period {
            let _ = c.next();
        }
        prop_assert_eq!(c.next(), first);
    }

    /// GemmConfig derived quantities are internally consistent.
    #[test]
    fn gemm_config_consistency(ih in 1usize..32, iw in 1usize..32, ic in 1usize..8,
                               wh in 1usize..6, ww in 1usize..6, s in 1usize..4,
                               oc in 1usize..8) {
        prop_assume!(wh <= ih && ww <= iw);
        let g = GemmConfig::conv(ih, iw, ic, wh, ww, s, oc).expect("validated above");
        prop_assert_eq!(
            g.macs(),
            (g.output_pixels() * oc * g.reduction_len()) as u64
        );
        prop_assert_eq!(g.output_elems(), (g.output_pixels() * oc) as u64);
        prop_assert!(g.output_height() >= 1 && g.output_width() >= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The faithful pipeline stepper and the fast path agree for random
    /// operands, weights, codings and window lengths — Eq. 3 of the paper
    /// as an executable property.
    #[test]
    fn pipeline_equals_fast_path(
        i in -128i64..=128,
        ws in proptest::collection::vec(-128i64..=128, 1..10),
        temporal in any::<bool>(),
        ebt in 4u32..=8,
    ) {
        let coding = if temporal { Coding::Temporal } else { Coding::Rate };
        let weights: Vec<SignMagnitude> =
            ws.iter().map(|&w| SignMagnitude::from_signed(w, 8)).collect();
        let cycles = if temporal { 128 } else { 1u64 << (ebt - 1) };
        let mut slow = UnaryRow::new(8, SignMagnitude::from_signed(i, 8), weights.clone(), coding);
        let mut fast = UnaryRow::new(8, SignMagnitude::from_signed(i, 8), weights, coding);
        prop_assert_eq!(slow.run(cycles).to_vec(), fast.run_fast(cycles).to_vec());
    }

    /// Quantised GEMM execution through the unary array respects the
    /// global error bound: each of the K products errs by at most ~2
    /// counts, so the output errs by at most ~2.5·K counts.
    #[test]
    fn unary_gemm_error_is_bounded(seed in any::<u32>()) {
        use usystolic::gemm::{FeatureMap, WeightSet};
        use usystolic::arch::GemmExecutor;
        let gemm = GemmConfig::conv(4, 4, 2, 2, 2, 1, 2).expect("valid");
        let s = seed as usize;
        let input = FeatureMap::from_fn(4, 4, 2, |h, w, c| {
            (((h * 7 + w * 3 + c + s) % 17) as f64 / 8.5) - 1.0
        });
        let weights = WeightSet::from_fn(2, 2, 2, 2, |oc, wh, ww, ic| {
            ((((oc * 5 + wh * 3 + ww + ic + s) % 13) as f64 / 13.0) - 0.5) * 0.8
        });
        let cfg = SystolicConfig::new(4, 2, ComputingScheme::UnaryRate, 8).expect("valid");
        let out = GemmExecutor::new(cfg).execute(&gemm, &input, &weights)
            .expect("execution succeeds");
        let reference = usystolic::gemm::loopnest::gemm_reference(&gemm, &input, &weights)
            .expect("shapes match");
        // K = 8 reduction terms; bound the worst output element.
        let max_err = reference
            .as_slice()
            .iter()
            .zip(out.output.as_slice())
            .map(|(r, o)| (r - o).abs())
            .fold(0.0f64, f64::max);
        // Quantisation scales vary per tensor; this is a coarse sanity
        // bound relative to the value range (|ref| <= 8 here).
        prop_assert!(max_err < 0.6, "max err {}", max_err);
    }
}
