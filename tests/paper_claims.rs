//! The paper's headline quantitative claims, asserted as integration
//! tests against the full model stack. Bands are deliberately loose — the
//! substrate is an analytic simulator, not the authors' synthesis flow —
//! but the *shape* (who wins, by roughly what factor, where the
//! crossovers fall) must hold. EXPERIMENTS.md records the exact
//! paper-vs-measured numbers.

use usystolic::arch::{ComputingScheme, SystolicConfig};
use usystolic::gemm::GemmConfig;
use usystolic::hw::{evaluate_layer, ArrayArea, OnChipArea};
use usystolic::models::zoo::alexnet;
use usystolic::sim::MemoryHierarchy;

fn ur(cycles: u64) -> SystolicConfig {
    SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
        .with_mul_cycles(cycles)
        .expect("valid cycle count")
}

/// Abstract: "the rate-coded uSystolic reduces the systolic array area
/// ... by 59.0%" (edge, 8-bit).
#[test]
fn claim_systolic_array_area_reduction() {
    let bp = ArrayArea::for_config(&SystolicConfig::edge(ComputingScheme::BinaryParallel, 8))
        .total_mm2();
    let ur =
        ArrayArea::for_config(&SystolicConfig::edge(ComputingScheme::UnaryRate, 8)).total_mm2();
    let reduction = 100.0 * (1.0 - ur / bp);
    assert!(
        (51.0..=67.0).contains(&reduction),
        "SA area reduction {reduction:.1}% vs paper 59.0%"
    );
}

/// Abstract: "... and total on-chip area by 91.3%".
#[test]
fn claim_on_chip_area_reduction() {
    let bp = OnChipArea::for_config(
        &SystolicConfig::edge(ComputingScheme::BinaryParallel, 8),
        &MemoryHierarchy::edge_with_sram(),
    )
    .total_mm2();
    let ur_area = OnChipArea::for_config(
        &SystolicConfig::edge(ComputingScheme::UnaryRate, 8),
        &MemoryHierarchy::no_sram(),
    )
    .total_mm2();
    let reduction = 100.0 * (1.0 - ur_area / bp);
    assert!(
        (85.0..=97.0).contains(&reduction),
        "on-chip area reduction {reduction:.1}% vs paper 91.3%"
    );
}

/// Section V-B: rate-coded uSystolic without SRAM needs [0.11, 0.47] GB/s
/// of DRAM for compute-bound conv layers and [0.46, 1.08] GB/s for
/// memory-bound FC layers of 8-bit AlexNet (edge).
#[test]
fn claim_crawling_dram_bandwidth() {
    let mem = MemoryHierarchy::no_sram();
    for layer in alexnet().layers {
        let ev = evaluate_layer(&ur(128), &mem, &layer.gemm);
        let bw = ev.report.dram_bandwidth_gbps;
        if layer.name.starts_with("Conv") {
            assert!(
                (0.05..0.8).contains(&bw),
                "{}: conv bandwidth {bw} GB/s out of crawling band",
                layer.name
            );
        } else {
            assert!(
                (0.2..2.0).contains(&bw),
                "{}: fc bandwidth {bw} GB/s out of band",
                layer.name
            );
        }
    }
}

/// Section V-B: binary parallel without SRAM needs ~10.49 GB/s peak —
/// impossible to feed from crawling DRAM bytes.
#[test]
fn claim_binary_needs_sram() {
    let cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
    let mem = MemoryHierarchy::no_sram();
    let peak = alexnet()
        .layers
        .iter()
        .map(|l| {
            evaluate_layer(&cfg, &mem, &l.gemm)
                .report
                .dram_bandwidth_gbps
        })
        .fold(0.0f64, f64::max);
    assert!(
        peak > 5.0,
        "binary parallel peak bandwidth {peak} GB/s should be an order above unary"
    );
}

/// Section V-F: on-chip power reduction of [97.6, 99.5]% (mean 98.4%) for
/// the edge vs binary parallel.
#[test]
fn claim_on_chip_power_reduction() {
    let bp_cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
    let bp_mem = MemoryHierarchy::edge_with_sram();
    let ur_mem = MemoryHierarchy::no_sram();
    for layer in alexnet().layers {
        let bp = evaluate_layer(&bp_cfg, &bp_mem, &layer.gemm)
            .power
            .on_chip_w();
        let u = evaluate_layer(&ur(128), &ur_mem, &layer.gemm)
            .power
            .on_chip_w();
        let reduction = 100.0 * (1.0 - u / bp);
        assert!(
            reduction > 90.0,
            "{}: on-chip power reduction {reduction:.1}% below band",
            layer.name
        );
    }
}

/// Abstract: on-chip energy and power efficiency improved by up to 112.2×
/// and 44.8× for AlexNet. Check the maxima are double-digit multiples.
#[test]
fn claim_headline_efficiency_maxima() {
    let bp_cfg = SystolicConfig::edge(ComputingScheme::BinaryParallel, 8);
    let bp_mem = MemoryHierarchy::edge_with_sram();
    let ur_mem = MemoryHierarchy::no_sram();
    let mut max_eei = 0.0f64;
    let mut max_pei = 0.0f64;
    for layer in alexnet().layers {
        let bp = evaluate_layer(&bp_cfg, &bp_mem, &layer.gemm);
        let u = evaluate_layer(&ur(32), &ur_mem, &layer.gemm);
        max_eei = max_eei.max(u.on_chip_efficiency.energy_eff / bp.on_chip_efficiency.energy_eff);
        max_pei = max_pei.max(u.on_chip_efficiency.power_eff / bp.on_chip_efficiency.power_eff);
    }
    assert!(
        max_eei > 10.0,
        "max EEI {max_eei:.1}x too low vs paper 112.2x"
    );
    assert!(
        max_pei > 10.0,
        "max PEI {max_pei:.1}x too low vs paper 44.8x"
    );
}

/// Section V-D: cloud binary parallel suffers heavy memory contention
/// (161.8% mean conv overhead); uSystolic stays far lower (13.4–47.5%).
#[test]
fn claim_cloud_contention_ordering() {
    let mem_bp = MemoryHierarchy::cloud_with_sram();
    let mem_ur = MemoryHierarchy::no_sram();
    let bp_cfg = SystolicConfig::cloud(ComputingScheme::BinaryParallel, 8);
    let ur_cfg = SystolicConfig::cloud(ComputingScheme::UnaryRate, 8)
        .with_mul_cycles(128)
        .expect("valid cycle count");
    let conv = |cfg, mem: &MemoryHierarchy| -> f64 {
        let layers = alexnet();
        let convs: Vec<_> = layers
            .layers
            .iter()
            .filter(|l| l.name.starts_with("Conv"))
            .collect();
        convs
            .iter()
            .map(|l| evaluate_layer(&cfg, mem, &l.gemm).report.timing.overhead())
            .sum::<f64>()
            / convs.len() as f64
    };
    let bp = conv(bp_cfg, &mem_bp);
    let ur = conv(ur_cfg, &mem_ur);
    assert!(bp > 1.0, "cloud BP mean overhead {bp} should exceed 100%");
    assert!(ur < 0.5, "cloud UR-128c overhead {ur} should stay low");
}

/// Section V-E: uGEMM-H consistently consumes over ~2× the energy of
/// uSystolic.
#[test]
fn claim_ugemm_h_energy_penalty() {
    let mem = MemoryHierarchy::no_sram();
    let ug = SystolicConfig::edge(ComputingScheme::UGemmHybrid, 8);
    let ut = SystolicConfig::edge(ComputingScheme::UnaryTemporal, 8);
    for layer in alexnet().layers {
        let g = evaluate_layer(&ug, &mem, &layer.gemm).energy.on_chip_j();
        let u = evaluate_layer(&ut, &mem, &layer.gemm).energy.on_chip_j();
        assert!(g > 1.8 * u, "{}: uGEMM-H {g} vs uSystolic {u}", layer.name);
    }
}

/// Section II (Table I context): the FSU footnote — AlexNet would need
/// 61.1 MB of on-chip weight storage in a fully-streaming design, far
/// beyond the 24 MB cloud SRAM. Verified from the model zoo.
#[test]
fn claim_fsu_weight_storage_infeasible() {
    let params = alexnet().parameters();
    assert!(
        params > 24 * 1024 * 1024,
        "AlexNet weights {params} must exceed 24 MB"
    );
}

/// Table II mapping: an FC layer is a 1×1 convolution under the unified
/// parameterisation, and both forms agree on MAC counts.
#[test]
fn claim_table_ii_unification() {
    let as_mm = GemmConfig::matmul(1, 9216, 4096).expect("valid");
    let as_conv = GemmConfig::conv(1, 1, 9216, 1, 1, 1, 4096).expect("valid");
    assert_eq!(as_mm.macs(), as_conv.macs());
    assert_eq!(as_mm.reduction_len(), as_conv.reduction_len());
    assert_eq!(as_mm.output_elems(), as_conv.output_elems());
}
