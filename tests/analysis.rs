//! Integration tests of the static invariant checker: every diagnostic
//! code is triggerable, legal paper configurations are clean, and the
//! analyzer's closed-form verdicts agree with the cycle-level simulator.

use usystolic::analyze::{analyze, required_acc_width, RawSpec, RngWiring, Severity};
use usystolic::arch::ComputingScheme;
use usystolic::gemm::GemmConfig;
use usystolic::obs::ToJson;
use usystolic::sim::runtime::layer_timing;
use usystolic::sim::MemoryHierarchy;

fn edge(scheme: ComputingScheme) -> RawSpec {
    RawSpec::new(12, 14, scheme, 8)
}

#[test]
fn paper_configurations_are_clean() {
    // Every scheme in both paper shapes, with and without the default
    // knobs, passes the analyzer.
    for scheme in ComputingScheme::ALL {
        for (rows, cols) in [(12usize, 14usize), (256, 256)] {
            let spec = RawSpec::new(rows, cols, scheme, 8);
            let report = analyze(&spec, None, None);
            assert!(report.is_legal(), "{scheme:?} {rows}x{cols}: {report}");
        }
    }
    // The paper's headline point: UR-128 on the edge shape.
    let spec = edge(ComputingScheme::UnaryRate).with_mul_cycles(128);
    assert!(analyze(&spec, None, None).is_legal());
}

#[test]
fn every_error_code_is_triggerable() {
    let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 256).unwrap();
    let no_sram = MemoryHierarchy::no_sram();
    let cases: Vec<(&str, RawSpec)> = vec![
        ("USY001", RawSpec::new(0, 14, ComputingScheme::UnaryRate, 8)),
        (
            "USY002",
            RawSpec::new(12, 14, ComputingScheme::UnaryRate, 99),
        ),
        (
            "USY010",
            edge(ComputingScheme::UnaryTemporal).with_effective_bitwidth(6),
        ),
        (
            "USY011",
            edge(ComputingScheme::UnaryRate).with_mul_cycles(256),
        ),
        (
            "USY012",
            edge(ComputingScheme::UnaryRate)
                .with_mul_cycles(32)
                .with_effective_bitwidth(7),
        ),
        ("USY020", edge(ComputingScheme::UnaryRate).with_acc_width(4)),
        (
            "USY030",
            edge(ComputingScheme::UnaryRate).with_wiring(RngWiring::Independent),
        ),
        (
            "USY040",
            edge(ComputingScheme::UnaryRate).with_fifo_depth(2),
        ),
        ("USY050", edge(ComputingScheme::BinaryParallel)),
    ];
    for (code, spec) in cases {
        let report = analyze(&spec, Some(&gemm), Some(&no_sram));
        assert!(report.has(code), "expected {code}, got: {report}");
        assert!(!report.is_legal(), "{code} must reject");
        assert!(
            report
                .diagnostics
                .iter()
                .all(|d| d.code.starts_with("USY") && !d.hint.is_empty()),
            "diagnostics carry codes and hints: {report}"
        );
    }
}

#[test]
fn acc_width_follows_reduced_resolution_rule() {
    // Section III-A: unary OREG is N bits smaller than binary for the
    // same reduction depth.
    let unary = required_acc_width(ComputingScheme::UnaryRate, 8, 12);
    let binary = required_acc_width(ComputingScheme::BinaryParallel, 8, 12);
    assert_eq!(binary - unary, 8);
    // Boundary: exactly sufficient passes, one bit short fails.
    assert!(analyze(
        &edge(ComputingScheme::UnaryRate).with_acc_width(unary),
        None,
        None
    )
    .is_legal());
    let short = analyze(
        &edge(ComputingScheme::UnaryRate).with_acc_width(unary - 1),
        None,
        None,
    );
    assert!(short.has("USY020"));
}

#[test]
fn analyzer_agrees_with_simulator_on_bandwidth() {
    // USY050 fires exactly when the timing model reports stalls for the
    // SRAM-free hierarchy.
    let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 256).unwrap();
    let memory = MemoryHierarchy::no_sram();
    for (scheme, cycles) in [
        (ComputingScheme::BinaryParallel, None),
        (ComputingScheme::UnaryRate, Some(128)),
    ] {
        let mut spec = edge(scheme);
        spec.mul_cycles = cycles;
        let report = analyze(&spec, Some(&gemm), Some(&memory));

        let mut cfg = usystolic::arch::SystolicConfig::edge(scheme, 8);
        if let Some(c) = cycles {
            cfg = cfg.with_mul_cycles(c).unwrap();
        }
        let timing = layer_timing(&gemm, &cfg, &memory);
        assert_eq!(
            report.has("USY050"),
            timing.stall_cycles > 0,
            "{scheme:?}: analyzer {report} vs {} stall cycles",
            timing.stall_cycles
        );
    }
}

#[test]
fn warnings_do_not_reject() {
    // A skinny GEMM on the cloud array wastes PEs: warned, not rejected.
    let gemm = GemmConfig::matmul(1, 4, 4).unwrap();
    let spec = RawSpec::new(256, 256, ComputingScheme::BinaryParallel, 8);
    let report = analyze(&spec, Some(&gemm), None);
    assert!(report.has("USY042"), "{report}");
    assert!(report.is_legal());
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.severity == Severity::Warning));
}

#[test]
fn report_json_is_machine_readable() {
    let spec = edge(ComputingScheme::UnaryRate).with_acc_width(4);
    let report = analyze(&spec, None, None);
    let json = report.to_json().render();
    let parsed = usystolic::obs::JsonValue::parse(&json).expect("valid JSON");
    assert_eq!(
        parsed.get("legal"),
        Some(&usystolic::obs::JsonValue::Bool(false))
    );
    assert!(json.contains("USY020"), "{json}");
}
