//! Integration tests of the static invariant checker: every diagnostic
//! code is triggerable, legal paper configurations are clean, and the
//! analyzer's closed-form verdicts agree with the cycle-level simulator.

use usystolic::analyze::{analyze, required_acc_width, RawSpec, RngWiring, Severity};
use usystolic::arch::ComputingScheme;
use usystolic::gemm::GemmConfig;
use usystolic::obs::ToJson;
use usystolic::sim::runtime::layer_timing;
use usystolic::sim::MemoryHierarchy;

fn edge(scheme: ComputingScheme) -> RawSpec {
    RawSpec::new(12, 14, scheme, 8)
}

#[test]
fn paper_configurations_are_clean() {
    // Every scheme in both paper shapes, with and without the default
    // knobs, passes the analyzer.
    for scheme in ComputingScheme::ALL {
        for (rows, cols) in [(12usize, 14usize), (256, 256)] {
            let spec = RawSpec::new(rows, cols, scheme, 8);
            let report = analyze(&spec, None, None);
            assert!(report.is_legal(), "{scheme:?} {rows}x{cols}: {report}");
        }
    }
    // The paper's headline point: UR-128 on the edge shape.
    let spec = edge(ComputingScheme::UnaryRate).with_mul_cycles(128);
    assert!(analyze(&spec, None, None).is_legal());
}

#[test]
fn every_error_code_is_triggerable() {
    let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 256).unwrap();
    let no_sram = MemoryHierarchy::no_sram();
    let cases: Vec<(&str, RawSpec)> = vec![
        ("USY001", RawSpec::new(0, 14, ComputingScheme::UnaryRate, 8)),
        (
            "USY002",
            RawSpec::new(12, 14, ComputingScheme::UnaryRate, 99),
        ),
        (
            "USY010",
            edge(ComputingScheme::UnaryTemporal).with_effective_bitwidth(6),
        ),
        (
            "USY011",
            edge(ComputingScheme::UnaryRate).with_mul_cycles(256),
        ),
        (
            "USY012",
            edge(ComputingScheme::UnaryRate)
                .with_mul_cycles(32)
                .with_effective_bitwidth(7),
        ),
        ("USY020", edge(ComputingScheme::UnaryRate).with_acc_width(4)),
        (
            "USY030",
            edge(ComputingScheme::UnaryRate).with_wiring(RngWiring::Independent),
        ),
        (
            "USY040",
            edge(ComputingScheme::UnaryRate).with_fifo_depth(2),
        ),
        ("USY050", edge(ComputingScheme::BinaryParallel)),
    ];
    for (code, spec) in cases {
        let report = analyze(&spec, Some(&gemm), Some(&no_sram));
        assert!(report.has(code), "expected {code}, got: {report}");
        assert!(!report.is_legal(), "{code} must reject");
        assert!(
            report
                .diagnostics
                .iter()
                .all(|d| d.code.starts_with("USY") && !d.hint.is_empty()),
            "diagnostics carry codes and hints: {report}"
        );
    }
}

#[test]
fn acc_width_follows_reduced_resolution_rule() {
    // Section III-A: unary OREG is N bits smaller than binary for the
    // same reduction depth.
    let unary = required_acc_width(ComputingScheme::UnaryRate, 8, 12);
    let binary = required_acc_width(ComputingScheme::BinaryParallel, 8, 12);
    assert_eq!(binary - unary, 8);
    // Boundary: exactly sufficient passes, one bit short fails.
    assert!(analyze(
        &edge(ComputingScheme::UnaryRate).with_acc_width(unary),
        None,
        None
    )
    .is_legal());
    let short = analyze(
        &edge(ComputingScheme::UnaryRate).with_acc_width(unary - 1),
        None,
        None,
    );
    assert!(short.has("USY020"));
}

#[test]
fn analyzer_agrees_with_simulator_on_bandwidth() {
    // USY050 fires exactly when the timing model reports stalls for the
    // SRAM-free hierarchy.
    let gemm = GemmConfig::conv(27, 27, 96, 5, 5, 1, 256).unwrap();
    let memory = MemoryHierarchy::no_sram();
    for (scheme, cycles) in [
        (ComputingScheme::BinaryParallel, None),
        (ComputingScheme::UnaryRate, Some(128)),
    ] {
        let mut spec = edge(scheme);
        spec.mul_cycles = cycles;
        let report = analyze(&spec, Some(&gemm), Some(&memory));

        let mut cfg = usystolic::arch::SystolicConfig::edge(scheme, 8);
        if let Some(c) = cycles {
            cfg = cfg.with_mul_cycles(c).unwrap();
        }
        let timing = layer_timing(&gemm, &cfg, &memory);
        assert_eq!(
            report.has("USY050"),
            timing.stall_cycles > 0,
            "{scheme:?}: analyzer {report} vs {} stall cycles",
            timing.stall_cycles
        );
    }
}

#[test]
fn warnings_do_not_reject() {
    // A skinny GEMM on the cloud array wastes PEs: warned, not rejected.
    let gemm = GemmConfig::matmul(1, 4, 4).unwrap();
    let spec = RawSpec::new(256, 256, ComputingScheme::BinaryParallel, 8);
    let report = analyze(&spec, Some(&gemm), None);
    assert!(report.has("USY042"), "{report}");
    assert!(report.is_legal());
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.severity == Severity::Warning));
}

#[test]
fn report_json_is_machine_readable() {
    let spec = edge(ComputingScheme::UnaryRate).with_acc_width(4);
    let report = analyze(&spec, None, None);
    let json = report.to_json().render();
    let parsed = usystolic::obs::JsonValue::parse(&json).expect("valid JSON");
    assert_eq!(
        parsed.get("legal"),
        Some(&usystolic::obs::JsonValue::Bool(false))
    );
    assert!(json.contains("USY020"), "{json}");
}

// ---------------------------------------------------------------------
// Whole-network abstract interpretation (USY06x) and its agreement with
// the cycle-level executors.
// ---------------------------------------------------------------------

mod network_analysis {
    use super::*;
    use usystolic::analyze::{analyze_network, et_window_error, window_bound};
    use usystolic::arch::{GemmExecutor, SystolicConfig};
    use usystolic::gemm::Matrix;
    use usystolic::models::zoo::{mnist_cnn4, NamedLayer, Network};
    use usystolic::unary::rng::SplitMix64;

    /// A single-layer network around one GEMM, for controlled specs.
    fn single_layer(name: &str, gemm: GemmConfig) -> Network {
        Network {
            name: name.to_owned(),
            layers: vec![NamedLayer {
                name: "l0".to_owned(),
                gemm,
            }],
        }
    }

    #[test]
    fn every_network_code_is_triggerable() {
        let net = mnist_cnn4();
        // USY060: calibrated ranges prove a sub-worst-case width safe.
        let proved = analyze_network(
            &edge(ComputingScheme::UnaryRate).with_acc_width(9),
            &net,
            None,
        );
        assert!(proved.report.has("USY060"), "{}", proved.report);
        assert!(!proved.report.has("USY061"), "{}", proved.report);
        assert!(proved.report.is_legal());

        // USY061: the same ranges prove a 4-bit OREG saturates.
        let saturates = analyze_network(
            &edge(ComputingScheme::UnaryRate).with_acc_width(4),
            &net,
            None,
        );
        assert!(saturates.report.has("USY061"), "{}", saturates.report);
        assert!(!saturates.report.is_legal());

        // USY062/USY063: composed ET error against a budget. Truncating
        // UR to 8 multiply cycles (4 effective bits) gives a non-zero
        // composed bound; a budget below it rejects, a budget within 2x
        // of it warns.
        let truncated = edge(ComputingScheme::UnaryRate).with_mul_cycles(8);
        let err = analyze_network(&truncated, &net, None).composed_et_error;
        assert!(err > 0.0, "truncation must cost accuracy");
        let over = analyze_network(&truncated, &net, Some(err / 2.0));
        assert!(over.report.has("USY062"), "{}", over.report);
        assert!(!over.report.is_legal());
        let near = analyze_network(&truncated, &net, Some(err * 1.5));
        assert!(near.report.has("USY063"), "{}", near.report);
        assert!(near.report.is_legal());
        let roomy = analyze_network(&truncated, &net, Some(err * 10.0));
        assert!(roomy.report.diagnostics.iter().all(|d| d.code != "USY062"));
        assert!(roomy.report.diagnostics.iter().all(|d| d.code != "USY063"));
    }

    #[test]
    fn overflow_verdicts_agree_with_executor_saturation_counters() {
        // The interpreter's claim is two-sided: `acc_bound <= capacity`
        // proves no data inside the calibrated ranges can saturate, and
        // `acc_bound > capacity` proves data at the range extremes does.
        // Feed the executor exactly those extremes and compare counters.
        let net = mnist_cnn4();
        for acc in [4u32, 9] {
            let spec = edge(ComputingScheme::UnaryRate).with_acc_width(acc);
            let analysis = analyze_network(&spec, &net, None);
            assert_eq!(analysis.layers.len(), net.layers.len());
            for (layer, verdict) in net.layers.iter().zip(&analysis.layers) {
                let gemm = &layer.gemm;
                let input = Matrix::from_fn(gemm.output_pixels(), gemm.reduction_len(), |_, _| {
                    verdict.input_levels as i64
                });
                let weights =
                    Matrix::from_fn(gemm.reduction_len(), gemm.output_channels(), |_, _| {
                        verdict.weight_levels as i64
                    });
                let config =
                    SystolicConfig::edge(ComputingScheme::UnaryRate, 8).with_acc_width(acc);
                let (_, stats) = GemmExecutor::new(config)
                    .execute_lowered(gemm, &input, &weights)
                    .expect("lowered execution");
                let statically_saturates = verdict.acc_bound > verdict.acc_capacity;
                assert_eq!(
                    stats.saturation_events > 0,
                    statically_saturates,
                    "{} at {acc} bits: static bound {} vs capacity {}, dynamic {} event(s)",
                    verdict.name,
                    verdict.acc_bound,
                    verdict.acc_capacity,
                    stats.saturation_events
                );
            }
        }
    }

    #[test]
    fn measured_et_error_stays_within_the_composed_bound() {
        // Run the same integer GEMM at full precision and truncated to 8
        // multiply cycles; the measured count perturbation must respect
        // both the per-window bound and the composed relative bound the
        // interpreter reports (the counts share one scale: the truncated
        // kernel shifts its counts back to full-scale units).
        let gemm = GemmConfig::matmul(8, 12, 8).unwrap();
        let net = single_layer("one-fc", gemm);
        let spec = edge(ComputingScheme::UnaryRate).with_mul_cycles(8);
        let analysis = analyze_network(&spec, &net, None);
        let verdict = &analysis.layers[0];
        assert!(verdict.et_rel_error > 0.0);

        // Pseudorandom operands inside the calibrated level ranges.
        let mut rng = SplitMix64::new(7);
        let mut level = |bound: u64| {
            let span = 2 * bound + 1;
            (rng.next_u64() % span) as i64 - bound as i64
        };
        let input = Matrix::from_fn(8, 12, |_, _| level(verdict.input_levels));
        let weights = Matrix::from_fn(12, 8, |_, _| level(verdict.weight_levels));

        let run = |mul_cycles: u64| {
            let config = SystolicConfig::edge(ComputingScheme::UnaryRate, 8)
                .with_mul_cycles(mul_cycles)
                .unwrap();
            GemmExecutor::new(config)
                .execute_lowered(&gemm, &input, &weights)
                .expect("lowered execution")
                .0
        };
        let full = run(128);
        let truncated = run(8);

        let max_delta = full
            .as_slice()
            .iter()
            .zip(truncated.as_slice())
            .map(|(&a, &b)| (a - b).unsigned_abs())
            .max()
            .unwrap();
        // Per-element: 12 windows, each perturbed by the window bound.
        let per_window = et_window_error(8, 4);
        assert!(
            max_delta <= 12 * per_window,
            "measured {max_delta} > static {}",
            12 * per_window
        );
        // Composed relative bound vs the measured relative error against
        // the full-precision window ceiling.
        let full_bound = window_bound(
            ComputingScheme::UnaryRate,
            8,
            128,
            verdict.input_levels,
            verdict.weight_levels,
        );
        let measured_rel = max_delta as f64 / (12.0 * full_bound as f64);
        assert!(
            measured_rel <= analysis.composed_et_error,
            "measured relative error {measured_rel} exceeds composed bound {}",
            analysis.composed_et_error
        );
    }

    #[test]
    fn interpreter_beats_the_worst_case_rule_without_contradicting_it() {
        // Where the worst-case rule (USY020) rejects a width, the
        // interpreter may prove it safe (USY060) — but it must never
        // prove a width the worst-case rule accepts to be saturating.
        let net = mnist_cnn4();
        for acc in 4..=14u32 {
            let spec = edge(ComputingScheme::UnaryRate).with_acc_width(acc);
            let worst_ok = analyze(&spec, None, None).is_legal();
            let interp = analyze_network(&spec, &net, None);
            if worst_ok {
                assert!(
                    !interp.report.has("USY061"),
                    "acc {acc}: worst-case accepts but interpreter saturates"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Static serving feasibility (USY07x).
// ---------------------------------------------------------------------

mod serving_feasibility {
    use usystolic::analyze::{check_serving, ServiceEstimate, ServingSpec};
    use usystolic::arch::{ComputingScheme, SystolicConfig};
    use usystolic::gemm::GemmConfig;
    use usystolic::serve::workload::{LayerProfile, WorkloadProfile};
    use usystolic::sim::MemoryHierarchy;

    fn profile(scheme: ComputingScheme) -> WorkloadProfile {
        let mut config = SystolicConfig::edge(scheme, 8);
        if scheme == ComputingScheme::UnaryRate {
            config = config.with_mul_cycles(128).unwrap();
        }
        let memory = MemoryHierarchy::no_sram();
        let gemm = GemmConfig::conv(31, 31, 96, 5, 5, 1, 256).unwrap();
        let layers = vec![LayerProfile::compute(&gemm, &config, &memory)];
        WorkloadProfile::from_layers("conv2", &layers, &memory)
    }

    fn spec(mean_interarrival_cycles: f64) -> ServingSpec {
        ServingSpec {
            mean_interarrival_cycles,
            instances: 4,
            max_batch: 8,
            queue_capacity: 16,
            deadline_cycles: None,
        }
    }

    #[test]
    fn every_serving_code_is_triggerable() {
        let ur = profile(ComputingScheme::UnaryRate);
        let estimate = ur.service_estimate(8, 4);
        let batch = estimate.batch_cycles as f64;
        let capacity = 32.0 / batch;

        // USY070: one arrival per cycle swamps any real profile.
        let r = check_serving(&estimate, &spec(1.0));
        assert!(r.has("USY070"), "{r}");
        assert!(!r.is_legal());

        // USY071: target utilisation 0.9 warns without rejecting.
        let r = check_serving(&estimate, &spec(1.0 / (0.9 * capacity)));
        assert!(r.has("USY071"), "{r}");
        assert!(r.is_legal());

        // USY072: a deadline below the single-request floor.
        let mut s = spec(batch * 10.0);
        s.deadline_cycles = Some(estimate.single_cycles - 1);
        let r = check_serving(&estimate, &s);
        assert!(r.has("USY072"), "{r}");
        assert!(!r.is_legal());

        // USY073: binary parallel without SRAM is DRAM-limited.
        let bp = profile(ComputingScheme::BinaryParallel);
        let e = bp.service_estimate(8, 4);
        let r = check_serving(&e, &spec(e.batch_cycles as f64 * 10.0));
        assert!(r.has("USY073"), "{r}");
        assert!(r.is_legal());

        // A clean operating point reports nothing.
        let r = check_serving(&estimate, &spec(batch * 10.0));
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn estimate_mirrors_the_service_model() {
        let p = profile(ComputingScheme::UnaryRate);
        let e: ServiceEstimate = p.service_estimate(8, 4);
        assert_eq!(e.batch_cycles, p.service_cycles(8, 4));
        assert_eq!(e.single_cycles, p.service_cycles(1, 1));
        assert_eq!(e.dram_limited, p.dram_limited(8, 4));
    }
}
