//! # uSystolic — byte-crawling unary systolic array
//!
//! Facade crate for the reproduction of *"uSystolic: Byte-Crawling Unary
//! Systolic Array"* (Wu & San Miguel, HPCA 2022). It re-exports the
//! workspace crates under stable module names:
//!
//! * [`unary`] — unary computing substrate (bitstreams, Sobol/LFSR RNGs,
//!   rate/temporal coding, uMUL, SCC, early termination).
//! * [`gemm`] — GEMM configuration (Table II), reference loop nest,
//!   tensors and fixed-point quantisation.
//! * [`arch`] — functional systolic arrays: the uSystolic PE array plus the
//!   binary parallel, binary serial and uGEMM-H baselines.
//! * [`des`] — the unified deterministic discrete-event core: the
//!   stable-ordering event queue, typed `Event`/`Port`/`Component`
//!   wiring and the `CycleAccurate | Packed | Analytic` fidelity switch
//!   shared by [`sim`] and [`serve`].
//! * [`sim`] — the uSystolic-Sim substitute: weight-stationary timing,
//!   SRAM/DRAM memory hierarchy, per-layer bandwidth and runtime,
//!   driven through [`des`] components.
//! * [`hw`] — hardware cost models (area, leakage/dynamic energy, power,
//!   efficiency) standing in for Design Compiler + CACTI.
//! * [`models`] — DNN workload zoo (AlexNet, ResNet18, MNIST CNN,
//!   MLPerf-like suite) and a pure-Rust CNN trainer.
//! * [`obs`] — zero-dependency observability: cycle-level tracing with
//!   Chrome `trace_event`/JSONL export, a metrics registry and the
//!   [`obs::ToJson`] structured-JSON trait.
//! * [`analyze`] — static invariant checker: validates raw (possibly
//!   illegal) configurations against the paper's invariants without
//!   simulation, reporting stable `USYxxx` diagnostics.
//! * [`serve`] — batched request serving on simulated instance pools:
//!   bounded admission, deadline/priority-aware batching dispatch,
//!   deterministic load generation and exact p50/p95/p99 latency
//!   histograms.
//! * [`pool`] — the shared host-side work-stealing thread pool behind the
//!   parallel phases of [`serve`] and the tile sweeps of [`arch`]
//!   (deterministic: worker count never changes results).
//! * [`faults`] — deterministic fault injection: seeded transient bit
//!   flips, stuck-at PEs and memory word corruption with bit-identical
//!   serial/packed outcomes, plus the binary resilience baseline.
//!
//! # Quickstart
//!
//! ```
//! use usystolic::arch::{ComputingScheme, SystolicConfig};
//! use usystolic::gemm::GemmConfig;
//!
//! // An 8-bit uSystolic rate-coded array in the paper's edge shape.
//! let config = SystolicConfig::edge(ComputingScheme::UnaryRate, 8);
//! let gemm = GemmConfig::matmul(4, 6, 5);
//! # let _ = (config, gemm);
//! ```

pub use usystolic_analyze as analyze;
pub use usystolic_core as arch;
pub use usystolic_des as des;
pub use usystolic_faults as faults;
pub use usystolic_gemm as gemm;
pub use usystolic_hw as hw;
pub use usystolic_models as models;
pub use usystolic_obs as obs;
pub use usystolic_pool as pool;
pub use usystolic_serve as serve;
pub use usystolic_sim as sim;
pub use usystolic_unary as unary;
